package suffixtree

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dyncoll/internal/doc"
)

// model is a brute-force reference collection.
type model map[uint64][]byte

func (m model) find(pattern []byte) []Occurrence {
	var out []Occurrence
	for id, data := range m {
		for off := 0; off+len(pattern) <= len(data); off++ {
			if bytes.Equal(data[off:off+len(pattern)], pattern) {
				out = append(out, Occurrence{DocID: id, Off: off})
			}
		}
	}
	sortOccs(out)
	return out
}

func sortOccs(o []Occurrence) {
	sort.Slice(o, func(i, j int) bool {
		if o[i].DocID != o[j].DocID {
			return o[i].DocID < o[j].DocID
		}
		return o[i].Off < o[j].Off
	})
}

func occsEqual(a, b []Occurrence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedFind(t *Tree, pattern []byte) []Occurrence {
	out := t.Find(pattern)
	sortOccs(out)
	return out
}

func randomData(rng *rand.Rand, n, sigma int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(1 + rng.Intn(sigma))
	}
	return d
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.DocCount() != 0 {
		t.Fatal("fresh tree not empty")
	}
	if got := tr.Find([]byte("x")); len(got) != 0 {
		t.Fatalf("empty tree matched: %v", got)
	}
	if tr.Delete(42) {
		t.Fatal("Delete on empty tree reported success")
	}
}

func TestSingleDocKnown(t *testing.T) {
	tr := New()
	tr.Insert(doc.Doc{ID: 1, Data: []byte("banana")})
	cases := []struct {
		pat  string
		want []Occurrence
	}{
		{"a", []Occurrence{{1, 1}, {1, 3}, {1, 5}}},
		{"ana", []Occurrence{{1, 1}, {1, 3}}},
		{"banana", []Occurrence{{1, 0}}},
		{"nan", []Occurrence{{1, 2}}},
		{"x", nil},
		{"bananax", nil},
		{"anana", []Occurrence{{1, 1}}},
	}
	for _, c := range cases {
		got := sortedFind(tr, []byte(c.pat))
		if !occsEqual(got, c.want) {
			t.Errorf("Find(%q) = %v, want %v", c.pat, got, c.want)
		}
		if n := tr.Count([]byte(c.pat)); n != len(c.want) {
			t.Errorf("Count(%q) = %d, want %d", c.pat, n, len(c.want))
		}
	}
}

func TestEmptyPattern(t *testing.T) {
	tr := New()
	tr.Insert(doc.Doc{ID: 1, Data: []byte("abc")})
	tr.Insert(doc.Doc{ID: 2, Data: []byte("de")})
	// Every position of every live doc: 3 + 2.
	if n := tr.Count(nil); n != 5 {
		t.Fatalf("Count(empty) = %d, want 5", n)
	}
}

func TestMultiDocAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sigma := range []int{1, 2, 4, 26} {
		tr := New()
		m := model{}
		for i := 0; i < 30; i++ {
			data := randomData(rng, 1+rng.Intn(120), sigma)
			id := uint64(i + 1)
			tr.Insert(doc.Doc{ID: id, Data: data})
			m[id] = data
		}
		if tr.DocCount() != 30 {
			t.Fatalf("DocCount=%d", tr.DocCount())
		}
		for trial := 0; trial < 100; trial++ {
			var pattern []byte
			if trial%2 == 0 {
				// Planted.
				id := uint64(1 + rng.Intn(30))
				data := m[id]
				off := rng.Intn(len(data))
				l := 1 + rng.Intn(minInt(8, len(data)-off))
				pattern = data[off : off+l]
			} else {
				pattern = randomData(rng, 1+rng.Intn(6), sigma)
			}
			got := sortedFind(tr, pattern)
			want := m.find(pattern)
			if !occsEqual(got, want) {
				t.Fatalf("σ=%d pattern %q: got %v, want %v", sigma, pattern, got, want)
			}
		}
	}
}

func TestDeleteHidesOccurrences(t *testing.T) {
	tr := New()
	tr.Insert(doc.Doc{ID: 1, Data: []byte("hello world")})
	tr.Insert(doc.Doc{ID: 2, Data: []byte("hello there")})
	if n := tr.Count([]byte("hello")); n != 2 {
		t.Fatalf("before delete: %d", n)
	}
	if !tr.Delete(1) {
		t.Fatal("Delete failed")
	}
	got := sortedFind(tr, []byte("hello"))
	if !occsEqual(got, []Occurrence{{2, 0}}) {
		t.Fatalf("after delete: %v", got)
	}
	if tr.Has(1) || !tr.Has(2) {
		t.Fatal("Has wrong after delete")
	}
	if tr.Delete(1) {
		t.Fatal("double delete reported success")
	}
}

func TestRebuildAfterManyDeletes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New()
	m := model{}
	for i := 0; i < 40; i++ {
		data := randomData(rng, 50, 4)
		id := uint64(i + 1)
		tr.Insert(doc.Doc{ID: id, Data: data})
		m[id] = data
	}
	// Delete 30 of 40: forces at least one rebuild.
	for i := 0; i < 30; i++ {
		id := uint64(i + 1)
		tr.Delete(id)
		delete(m, id)
	}
	if tr.DeletedSymbols() > tr.Len() {
		t.Fatalf("rebuild did not trigger: deleted=%d live=%d", tr.DeletedSymbols(), tr.Len())
	}
	for trial := 0; trial < 60; trial++ {
		pattern := randomData(rng, 1+rng.Intn(4), 4)
		if !occsEqual(sortedFind(tr, pattern), m.find(pattern)) {
			t.Fatalf("post-rebuild mismatch for %q", pattern)
		}
	}
	// Live docs should round trip.
	live := tr.LiveDocs()
	if len(live) != 10 {
		t.Fatalf("LiveDocs returned %d docs", len(live))
	}
	for _, d := range live {
		if !bytes.Equal(d.Data, m[d.ID]) {
			t.Fatalf("LiveDocs data mismatch for %d", d.ID)
		}
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	m := model{}
	nextID := uint64(1)
	var ids []uint64
	for op := 0; op < 400; op++ {
		switch {
		case len(ids) == 0 || rng.Intn(3) > 0:
			data := randomData(rng, 1+rng.Intn(60), 3)
			tr.Insert(doc.Doc{ID: nextID, Data: data})
			m[nextID] = data
			ids = append(ids, nextID)
			nextID++
		default:
			i := rng.Intn(len(ids))
			id := ids[i]
			ids = append(ids[:i], ids[i+1:]...)
			tr.Delete(id)
			delete(m, id)
		}
		if op%20 == 0 {
			pattern := randomData(rng, 1+rng.Intn(4), 3)
			if !occsEqual(sortedFind(tr, pattern), m.find(pattern)) {
				t.Fatalf("op %d: mismatch for %q", op, pattern)
			}
		}
	}
}

func TestDuplicateIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr := New()
	tr.Insert(doc.Doc{ID: 1, Data: []byte("a")})
	tr.Insert(doc.Doc{ID: 1, Data: []byte("b")})
}

func TestReservedBytePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Insert(doc.Doc{ID: 1, Data: []byte{1, 0}})
}

func TestPathologicalDocs(t *testing.T) {
	tr := New()
	m := model{}
	docs := [][]byte{
		bytes.Repeat([]byte{7}, 500),       // unary
		bytes.Repeat([]byte{1, 2}, 250),    // period 2
		bytes.Repeat([]byte{1, 1, 2}, 160), // period 3
		{42},                               // single symbol
	}
	for i, d := range docs {
		id := uint64(i + 1)
		tr.Insert(doc.Doc{ID: id, Data: d})
		m[id] = d
	}
	pats := [][]byte{{7}, {7, 7, 7}, {1, 2, 1}, {2, 1, 1}, {42}, {42, 42}, {3}}
	for _, p := range pats {
		if !occsEqual(sortedFind(tr, p), m.find(p)) {
			t.Fatalf("mismatch for %v", p)
		}
	}
}

func TestFindFuncEarlyStop(t *testing.T) {
	tr := New()
	tr.Insert(doc.Doc{ID: 1, Data: bytes.Repeat([]byte{5}, 100)})
	n := 0
	tr.FindFunc([]byte{5}, func(Occurrence) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestQuickAgainstModel(t *testing.T) {
	f := func(seed int64, sigmaRaw uint8) bool {
		sigma := int(sigmaRaw)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		m := model{}
		for i := 0; i < 12; i++ {
			data := randomData(rng, 1+rng.Intn(50), sigma)
			id := uint64(i + 1)
			tr.Insert(doc.Doc{ID: id, Data: data})
			m[id] = data
		}
		// A few deletions.
		for i := 0; i < 4; i++ {
			id := uint64(1 + rng.Intn(12))
			if tr.Delete(id) {
				delete(m, id)
			}
		}
		for trial := 0; trial < 8; trial++ {
			pattern := randomData(rng, 1+rng.Intn(5), sigma)
			if !occsEqual(sortedFind(tr, pattern), m.find(pattern)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestAllSuffixesPresent verifies the Ukkonen construction directly: every
// suffix of every live document is findable.
func TestAllSuffixesPresent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := New()
	var all [][]byte
	for i := 0; i < 10; i++ {
		data := randomData(rng, 1+rng.Intn(80), 3)
		tr.Insert(doc.Doc{ID: uint64(i + 1), Data: data})
		all = append(all, data)
	}
	for _, data := range all {
		for off := 0; off < len(data); off++ {
			if tr.Count(data[off:]) == 0 {
				t.Fatalf("suffix %q missing", data[off:])
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	data := randomData(rng, 1000, 26)
	b.SetBytes(1000)
	b.ResetTimer()
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Insert(doc.Doc{ID: uint64(i + 1), Data: data})
		if tr.Len() > 1<<22 {
			b.StopTimer()
			tr = New()
			b.StartTimer()
		}
	}
}

func BenchmarkFind(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(doc.Doc{ID: uint64(i + 1), Data: randomData(rng, 2000, 26)})
	}
	pats := make([][]byte, 64)
	for i := range pats {
		pats[i] = randomData(rng, 6, 26)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Count(pats[i&63])
	}
}
