package suffixtree

import (
	"bytes"
	"math/rand"
	"testing"

	"dyncoll/internal/doc"
)

// TestExtractWindows exercises every Extract code path: full documents,
// prefixes, suffixes, interior windows, empty windows, and failures.
func TestExtractWindows(t *testing.T) {
	tr := New()
	data := []byte{10, 20, 30, 40, 50, 60}
	tr.Insert(doc.Doc{ID: 1, Data: data})
	tr.Insert(doc.Doc{ID: 2, Data: []byte{1, 2}})

	for off := 0; off <= len(data); off++ {
		for l := 0; off+l <= len(data); l++ {
			got, ok := tr.Extract(1, off, l)
			if !ok || !bytes.Equal(got, data[off:off+l]) {
				t.Fatalf("Extract(1,%d,%d) = %v, %v", off, l, got, ok)
			}
		}
	}
	if _, ok := tr.Extract(3, 0, 1); ok {
		t.Fatal("Extract of absent doc succeeded")
	}
	tr.Delete(1)
	if _, ok := tr.Extract(1, 0, 1); ok {
		t.Fatal("Extract of deleted doc succeeded")
	}
}

// TestSharedPrefixForest builds many documents sharing long prefixes, the
// worst case for suffix-link chains.
func TestSharedPrefixForest(t *testing.T) {
	tr := New()
	base := bytes.Repeat([]byte{7, 8, 9}, 40)
	for i := 0; i < 30; i++ {
		d := append(append([]byte{}, base...), byte(i%5+1), byte(i%7+1))
		tr.Insert(doc.Doc{ID: uint64(i + 1), Data: d})
	}
	if got := tr.Count(base); got != 30 {
		t.Fatalf("Count(base) = %d, want 30", got)
	}
	// The shared fragment 7,8,9 occurs 40 times per document.
	if got := tr.Count([]byte{7, 8, 9}); got != 30*40 {
		t.Fatalf("Count(789) = %d, want %d", got, 30*40)
	}
	for i := 0; i < 30; i += 2 {
		tr.Delete(uint64(i + 1))
	}
	if got := tr.Count(base); got != 15 {
		t.Fatalf("Count(base) after deletes = %d, want 15", got)
	}
}

// TestByteExtremes uses payload bytes 1 and 255 (the boundary values the
// int32 symbol mapping must keep distinct from terminators ≥ 256).
func TestByteExtremes(t *testing.T) {
	tr := New()
	tr.Insert(doc.Doc{ID: 1, Data: []byte{255, 1, 255, 255, 1}})
	tr.Insert(doc.Doc{ID: 2, Data: []byte{1, 255}})
	if got := tr.Count([]byte{255}); got != 4 {
		t.Fatalf("Count(255) = %d, want 4", got)
	}
	if got := tr.Count([]byte{255, 255}); got != 1 {
		t.Fatalf("Count(255,255) = %d, want 1", got)
	}
	if got := tr.Count([]byte{1, 255}); got != 2 {
		t.Fatalf("Count(1,255) = %d, want 2", got)
	}
}

// TestTerminatorIsolation ensures one document's suffixes never match
// into another document across the terminator.
func TestTerminatorIsolation(t *testing.T) {
	tr := New()
	tr.Insert(doc.Doc{ID: 1, Data: []byte{5, 6}})
	tr.Insert(doc.Doc{ID: 2, Data: []byte{7, 8}})
	// "6 7" spans the boundary in concatenation order; must not match.
	if got := tr.Count([]byte{6, 7}); got != 0 {
		t.Fatalf("cross-document match: Count(6,7) = %d", got)
	}
}

// TestManyTinyDocs covers the per-document terminator space (many seqs).
func TestManyTinyDocs(t *testing.T) {
	tr := New()
	for i := 0; i < 2000; i++ {
		tr.Insert(doc.Doc{ID: uint64(i + 1), Data: []byte{byte(i%3 + 1)}})
	}
	if tr.DocCount() != 2000 || tr.Len() != 2000 {
		t.Fatalf("DocCount=%d Len=%d", tr.DocCount(), tr.Len())
	}
	want := 0
	for i := 0; i < 2000; i++ {
		if i%3 == 0 {
			want++
		}
	}
	if got := tr.Count([]byte{1}); got != want {
		t.Fatalf("Count(1) = %d, want %d", got, want)
	}
}

// TestRebuildPreservesEverything drives churn far past several rebuild
// thresholds and exhaustively verifies all live content afterwards.
func TestRebuildPreservesEverything(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(77))
	content := map[uint64][]byte{}
	var ids []uint64
	next := uint64(1)
	for round := 0; round < 40; round++ {
		for i := 0; i < 10; i++ {
			n := rng.Intn(50) + 1
			d := make([]byte, n)
			for j := range d {
				d[j] = byte(rng.Intn(4) + 1)
			}
			tr.Insert(doc.Doc{ID: next, Data: d})
			content[next] = d
			ids = append(ids, next)
			next++
		}
		for i := 0; i < 8 && len(ids) > 0; i++ {
			k := rng.Intn(len(ids))
			id := ids[k]
			ids = append(ids[:k], ids[k+1:]...)
			tr.Delete(id)
			delete(content, id)
		}
	}
	if tr.DocCount() != len(content) {
		t.Fatalf("DocCount = %d, want %d", tr.DocCount(), len(content))
	}
	for id, data := range content {
		got, ok := tr.Extract(id, 0, len(data))
		if !ok || !bytes.Equal(got, data) {
			t.Fatalf("content of %d lost after rebuilds", id)
		}
	}
	// Live docs listing must match exactly.
	live := tr.LiveDocs()
	if len(live) != len(content) {
		t.Fatalf("LiveDocs = %d, want %d", len(live), len(content))
	}
	for _, d := range live {
		if !bytes.Equal(d.Data, content[d.ID]) {
			t.Fatalf("LiveDocs content mismatch for %d", d.ID)
		}
	}
}

// TestDocLenPaths covers present, deleted and absent IDs.
func TestDocLenPaths(t *testing.T) {
	tr := New()
	tr.Insert(doc.Doc{ID: 9, Data: []byte{1, 2, 3}})
	if n, ok := tr.DocLen(9); !ok || n != 3 {
		t.Fatalf("DocLen = %d, %v", n, ok)
	}
	if _, ok := tr.DocLen(10); ok {
		t.Fatal("DocLen of absent doc succeeded")
	}
	tr.Delete(9)
	if _, ok := tr.DocLen(9); ok {
		t.Fatal("DocLen of deleted doc succeeded")
	}
}

// TestSizeBitsGrowsAndShrinks sanity-checks space accounting through a
// rebuild.
func TestSizeBitsGrowsAndShrinks(t *testing.T) {
	tr := New()
	empty := tr.SizeBits()
	var ids []uint64
	for i := 0; i < 50; i++ {
		d := bytes.Repeat([]byte{byte(i%7 + 1)}, 40)
		tr.Insert(doc.Doc{ID: uint64(i + 1), Data: d})
		ids = append(ids, uint64(i+1))
	}
	full := tr.SizeBits()
	if full <= empty {
		t.Fatal("SizeBits did not grow")
	}
	for _, id := range ids {
		tr.Delete(id)
	}
	// All deleted → rebuild leaves an empty tree again.
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.SizeBits() >= full {
		t.Fatal("SizeBits did not shrink after rebuild")
	}
}

// TestPatternAcrossEdgeSplit plants patterns that end exactly at node
// boundaries and mid-edge.
func TestPatternAcrossEdgeSplit(t *testing.T) {
	tr := New()
	tr.Insert(doc.Doc{ID: 1, Data: []byte("abcabcaby")})
	cases := []struct {
		p    string
		want int
	}{
		{"a", 3}, {"ab", 3}, {"abc", 2}, {"abca", 2}, {"abcab", 2},
		{"abcabc", 1}, {"abcaby", 1}, {"aby", 1}, {"y", 1}, {"by", 1},
		{"abd", 0}, {"abcabd", 0}, {"yz", 0},
	}
	for _, c := range cases {
		if got := tr.Count([]byte(c.p)); got != c.want {
			t.Fatalf("Count(%q) = %d, want %d", c.p, got, c.want)
		}
		if got := len(tr.Find([]byte(c.p))); got != c.want {
			t.Fatalf("Find(%q) = %d, want %d", c.p, got, c.want)
		}
	}
}
