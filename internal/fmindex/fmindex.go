// Package fmindex implements the static compressed indexes that plug into
// the paper's static-to-dynamic transformations.
//
// Index is an FM-index over a document collection: the Burrows–Wheeler
// transform of the concatenated documents stored in a Huffman-shaped
// wavelet tree, plus suffix-array and inverse-suffix-array samples with
// sampling rate s. It answers
//
//   - Range (range-finding): the suffix-array interval of a pattern via
//     backward search, O(|P|) rank operations;
//   - Locate: the (document, offset) of one suffix-array row, O(s) rank
//     operations (tlocate = O(s));
//   - Extract: ℓ symbols of any document, O(s + ℓ) rank operations
//     (textract = O(s + ℓ));
//   - SuffixRank: the suffix-array row of a given text position, O(s)
//     rank operations (tSA = O(s)).
//
// This is the interface contract the paper demands of the static index Is
// ("range-finding and locating", plus tSA; Section 2). The concrete index
// stands in for the mmphf-based indexes of Belazzougui–Navarro and Barbay
// et al. — see DESIGN.md §2 for the substitution argument.
//
// Documents may contain any byte except 0x00, which is reserved as the
// document separator. The public API in package dyncoll enforces this.
package fmindex

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"dyncoll/internal/bitvec"
	"dyncoll/internal/doc"
	"dyncoll/internal/sa"
	"dyncoll/internal/wavelet"
)

// buildScratch pools the transient construction buffers — concatenated
// text, BWT bytes, inverse suffix array, and the SA-IS workspace — so
// the engine's repeated rebuilds recycle their scratch instead of
// re-allocating O(n) memory per merge. Each build goroutine checks one
// scratch out of the pool for the duration of its build.
type buildScratch struct {
	text []byte
	bwt  []byte
	inv  []int32
	psi  []int32 // CSA builds only
	saws sa.Workspace
}

var scratchPool = sync.Pool{New: func() any { return new(buildScratch) }}

// Sep is the reserved document separator byte.
const Sep byte = 0

// Doc is one document: an application-assigned identifier and its payload.
type Doc = doc.Doc

// Index is a static FM-index over a document collection.
type Index struct {
	n       int // total length of the concatenation (symbols + one separator per doc)
	s       int // SA sampling rate
	bwt     *wavelet.Tree
	c       [257]int // c[b] = number of BWT symbols < b; c[256] = n
	marked  *bitvec.Vector
	saSamp  []int32 // SA values at marked rows, ordered by row
	isaSamp []int32 // rows of positions 0, s, 2s, …, and n-1

	// Separator rows need explicit LF targets: with a shared separator
	// byte, the rank-based LF formula can be off by one at rows whose BWT
	// character is the separator (the cyclic wrap row does not in general
	// sort first among them). sepRows lists those rows in increasing
	// order; sepTargets[i] is the true LF target of sepRows[i].
	sepRows    []int32
	sepTargets []int32

	docStarts []int32 // global start offset of each document
	docIDs    []uint64
	symbols   int // total document symbols, excluding separators

	// sym resolves a row's first symbol without the binary search over
	// the C array; derived from c, rebuilt on load, never serialized.
	sym symTable
}

// buildSymTable derives the row→symbol table from the C array.
func (x *Index) buildSymTable() {
	var bound [257]int32
	for b, v := range x.c {
		bound[b] = int32(v)
	}
	x.sym.build(bound, x.n)
}

// Options configure index construction.
type Options struct {
	// SampleRate is the suffix-array sampling rate s; locate costs O(s)
	// rank operations and the samples take O(n/s·log n) bits. Default 16.
	SampleRate int
}

func (o Options) withDefaults() Options {
	if o.SampleRate <= 0 {
		o.SampleRate = 16
	}
	return o
}

// Build constructs the index over the given documents. Document data must
// not contain the separator byte 0x00.
//
// Construction recycles its scratch (concat buffer, SA-IS workspace,
// BWT bytes) through a pool shared across builds, and overlaps the two
// independent stages after the suffix array is known: the wavelet tree
// is built on a separate goroutine while this one derives the SA/ISA
// samples and separator targets.
func Build(docs []Doc, opts Options) *Index {
	opts = opts.withDefaults()
	total := 0
	for _, d := range docs {
		total += len(d.Data) + 1
	}
	sc := scratchPool.Get().(*buildScratch)
	text := sa.Grow(sc.text, total)[:0]
	idx := &Index{
		s:         opts.SampleRate,
		docStarts: make([]int32, len(docs)),
		docIDs:    make([]uint64, len(docs)),
	}
	for i, d := range docs {
		idx.docStarts[i] = int32(len(text))
		idx.docIDs[i] = d.ID
		if j := bytes.IndexByte(d.Data, Sep); j >= 0 {
			panic(fmt.Sprintf("fmindex: document %d contains the reserved separator byte 0x00 at offset %d", d.ID, j))
		}
		text = append(text, d.Data...)
		text = append(text, Sep)
		idx.symbols += len(d.Data)
	}
	sc.text = text
	idx.n = len(text)
	if idx.n == 0 {
		idx.bwt = wavelet.NewHuffmanBytes(nil, 256)
		idx.marked = bitvec.FromBools(nil)
		idx.buildSymTable()
		scratchPool.Put(sc)
		return idx
	}

	suff := sa.SuffixArrayWS(text, &sc.saws)
	// Cyclic BWT over the concatenation itself (its last byte is a
	// separator, so suffix order is well defined; see package comment).
	bwtBytes := sa.Grow(sc.bwt, idx.n)
	for i, p := range suff {
		if p == 0 {
			bwtBytes[i] = text[idx.n-1]
		} else {
			bwtBytes[i] = text[p-1]
		}
	}
	sc.bwt = bwtBytes

	// The wavelet tree over the BWT and the sample tables below depend
	// only on bwtBytes/suff, so the tree builds concurrently with them.
	treeDone := make(chan *wavelet.Tree, 1)
	go func() { treeDone <- wavelet.NewHuffmanBytes(bwtBytes, 256) }()

	var counts [256]int
	for _, b := range bwtBytes {
		counts[b]++
	}
	sum := 0
	for b := 0; b < 256; b++ {
		idx.c[b] = sum
		sum += counts[b]
	}
	idx.c[256] = sum
	idx.buildSymTable()

	// SA samples at rows whose suffix position is ≡ 0 (mod s); one pass
	// fills the mark bits (bulk-appended per word) and the sample table.
	mv := bitvec.New(idx.n)
	idx.saSamp = make([]int32, 0, idx.n/idx.s+1)
	var reg uint64
	shift := uint(0)
	for _, p := range suff {
		if int(p)%idx.s == 0 {
			reg |= 1 << shift
			idx.saSamp = append(idx.saSamp, p)
		}
		if shift++; shift == 64 {
			mv.AppendWord(reg, 64)
			reg, shift = 0, 0
		}
	}
	if shift > 0 {
		mv.AppendWord(reg, int(shift))
	}
	mv.Seal()
	idx.marked = mv

	// ISA samples at positions 0, s, 2s, … and n-1.
	idx.isaSamp = make([]int32, (idx.n-1)/idx.s+2)
	for row, p := range suff {
		if int(p)%idx.s == 0 {
			idx.isaSamp[int(p)/idx.s] = int32(row)
		}
		if int(p) == idx.n-1 {
			idx.isaSamp[len(idx.isaSamp)-1] = int32(row)
		}
	}

	// Exact LF targets for separator rows, via the inverse suffix array.
	isa := sa.Grow(sc.inv, idx.n)
	for i, p := range suff {
		isa[p] = int32(i)
	}
	sc.inv = isa
	for row, b := range bwtBytes {
		if b == Sep {
			idx.sepRows = append(idx.sepRows, int32(row))
			prev := (int(suff[row]) + idx.n - 1) % idx.n
			idx.sepTargets = append(idx.sepTargets, isa[prev])
		}
	}
	idx.bwt = <-treeDone
	scratchPool.Put(sc)
	return idx
}

// SALen reports the number of suffix-array rows (the universe of the
// deletion bitmap kept by the semi-dynamic wrapper).
func (x *Index) SALen() int { return x.n }

// SymbolCount reports the total number of document symbols, excluding
// separators.
func (x *Index) SymbolCount() int { return x.symbols }

// DocCount reports the number of documents in the index.
func (x *Index) DocCount() int { return len(x.docIDs) }

// DocID returns the application identifier of the i-th document.
func (x *Index) DocID(i int) uint64 { return x.docIDs[i] }

// DocLen returns the payload length of the i-th document.
func (x *Index) DocLen(i int) int {
	end := x.n
	if i+1 < len(x.docStarts) {
		end = int(x.docStarts[i+1])
	}
	return end - int(x.docStarts[i]) - 1
}

// SampleRate reports the SA sampling rate s.
func (x *Index) SampleRate() int { return x.s }

// lf is the last-to-first mapping: the row of the suffix starting one
// position earlier in the text (cyclically).
// LF maps a suffix-array row to the row of the suffix starting one text
// position earlier (the classic last-to-first mapping). Exposed so
// deletion machinery can clear a document's rows in one O(len) walk
// instead of len separate O(s) SuffixRank calls.
func (x *Index) LF(row int) int { return x.lf(row) }

func (x *Index) lf(row int) int {
	// One fused walk yields the BWT symbol and its rank at the row; the
	// pointer-era code paid two full wavelet traversals here.
	b, r := x.bwt.AccessRank(row)
	if byte(b) == Sep {
		i := sort.Search(len(x.sepRows), func(i int) bool {
			return x.sepRows[i] >= int32(row)
		})
		return int(x.sepTargets[i])
	}
	return x.c[b] + r
}

// Range returns the half-open suffix-array interval [lo, hi) of rows
// whose suffixes start with pattern, via backward search. An empty
// pattern yields the full interval; an absent pattern yields lo == hi.
// Patterns containing the separator byte never match.
func (x *Index) Range(pattern []byte) (lo, hi int) {
	lo, hi = 0, x.n
	for i := len(pattern) - 1; i >= 0 && lo < hi; i-- {
		b := pattern[i]
		// Both interval endpoints rank the same symbol, so one fused
		// walk shares the node path and bit-vector directory loads.
		rl, rh := x.bwt.RankPair(uint32(b), lo, hi)
		lo = x.c[b] + rl
		hi = x.c[b] + rh
	}
	return lo, hi
}

// Locate maps a suffix-array row to the document index and offset of the
// suffix start. Offsets equal to DocLen(doc) denote the document's
// trailing separator.
func (x *Index) Locate(row int) (doc, off int) {
	if row < 0 || row >= x.n {
		panic(fmt.Sprintf("fmindex: Locate(%d) out of range [0,%d)", row, x.n))
	}
	steps := 0
	for !x.marked.Get(row) {
		row = x.lf(row)
		steps++
	}
	pos := int(x.saSamp[x.marked.Rank1(row)]) + steps
	return x.posToDoc(pos)
}

// AppendPositions locates every row of [lo, hi) and appends the results
// to dst, each packed as docIndex<<32 | offset — so sorting the packed
// words ascending yields the rows in text-position order: grouped by
// document, offsets ascending within each document. This is the
// position-ordered enumeration ranked search aggregates over; packing
// keeps the sort a plain uint64 sort with no per-element indirection.
func (x *Index) AppendPositions(lo, hi int, dst []uint64) []uint64 {
	if cap(dst)-len(dst) < hi-lo {
		grown := make([]uint64, len(dst), len(dst)+(hi-lo))
		copy(grown, dst)
		dst = grown
	}
	for row := lo; row < hi; row++ {
		d, off := x.Locate(row)
		dst = append(dst, uint64(d)<<32|uint64(uint32(off)))
	}
	return dst
}

func (x *Index) posToDoc(pos int) (doc, off int) {
	doc = sort.Search(len(x.docStarts), func(i int) bool {
		return int(x.docStarts[i]) > pos
	}) - 1
	return doc, pos - int(x.docStarts[doc])
}

// SuffixRank returns the suffix-array row of the suffix starting at the
// given document offset (tSA in the paper). off may equal DocLen(doc),
// addressing the trailing separator.
func (x *Index) SuffixRank(doc, off int) int {
	pos := int(x.docStarts[doc]) + off
	if pos < 0 || pos >= x.n {
		panic(fmt.Sprintf("fmindex: SuffixRank position %d out of range", pos))
	}
	// Start from the nearest ISA sample at or after pos and walk LF.
	j := (pos + x.s - 1) / x.s * x.s
	var row int
	if j >= x.n {
		j = x.n - 1
		row = int(x.isaSamp[len(x.isaSamp)-1])
	} else {
		row = int(x.isaSamp[j/x.s])
	}
	for ; j > pos; j-- {
		row = x.lf(row)
	}
	return row
}

// charAtRow returns the first character of the suffix at the given row:
// the symbol b with c[b] ≤ row < c[b+1], via the sampled row→symbol
// table (the closure-driven binary search this replaces was the hot
// inner step of Extract).
func (x *Index) charAtRow(row int) byte {
	return x.sym.at(row)
}

// Extract returns length symbols of document doc starting at offset off.
// It clamps the range to the document payload.
func (x *Index) Extract(doc, off, length int) []byte {
	dl := x.DocLen(doc)
	if off < 0 {
		off = 0
	}
	if off > dl {
		off = dl
	}
	if off+length > dl {
		length = dl - off
	}
	if length <= 0 {
		return nil
	}
	// Walk LF from the row of the last wanted position, emitting text
	// right to left.
	row := x.SuffixRank(doc, off+length-1)
	out := make([]byte, length)
	for i := length - 1; i >= 0; i-- {
		out[i] = x.charAtRow(row)
		if i > 0 {
			row = x.lf(row)
		}
	}
	return out
}

// SizeBits estimates the index footprint in bits for space accounting.
func (x *Index) SizeBits() int64 {
	var total int64
	total += x.bwt.SizeBits()
	total += x.marked.SizeBits()
	total += int64(len(x.saSamp)+len(x.isaSamp)) * 32
	total += int64(len(x.sepRows)+len(x.sepTargets)) * 32
	total += int64(len(x.docStarts))*32 + int64(len(x.docIDs))*64
	total += 257 * 64
	return total
}
