package fmindex

import (
	"dyncoll/internal/bitvec"
	"dyncoll/internal/snap"
	"dyncoll/internal/wavelet"
)

// Binary serialization for the three built-in static indexes. Each
// index implements the snapshot fast-path contract —
// AppendBinary/UnmarshalBinary — so snapshots of compressed levels can
// round-trip without an O(n·u(n)) rebuild at load.
//
// Decoding validates structural invariants (monotone document starts,
// sample-table sizes, in-range rows) rather than trusting the input, so
// a loaded index either answers queries within bounds or the decode
// fails with snap.ErrBadSnapshot.

// checkDocTable validates the shared document table shape: docStarts
// strictly increasing from 0, one ID per start, and symbols consistent
// with one separator per document.
// failer is the error sink both codecs share (snap.Decoder for the v1
// varint form, snap.MapView for the v2 mapped form).
type failer interface {
	Fail(format string, args ...any)
}

func checkDocTable(d failer, n int, docStarts []int32, docIDs []uint64, symbols int) bool {
	if len(docIDs) != len(docStarts) {
		d.Fail("doc table: %d ids for %d starts", len(docIDs), len(docStarts))
		return false
	}
	for i, s := range docStarts {
		if int(s) < 0 || int(s) >= n || (i == 0 && s != 0) || (i > 0 && s <= docStarts[i-1]) {
			d.Fail("doc table: start %d at position %d out of order", s, i)
			return false
		}
	}
	if symbols != n-len(docIDs) {
		d.Fail("doc table: %d symbols for %d rows and %d docs", symbols, n, len(docIDs))
		return false
	}
	return true
}

// checkRows validates that every value of rows lies in [0, n).
func checkRows(d failer, what string, rows []int32, n int) bool {
	for _, r := range rows {
		if int(r) < 0 || int(r) >= n {
			d.Fail("%s: row %d outside [0,%d)", what, r, n)
			return false
		}
	}
	return true
}

// EncodeTo writes the FM-index's portable form into an encoder.
func (x *Index) EncodeTo(e *snap.Encoder) {
	e.Uvarint(uint64(x.n))
	e.Uvarint(uint64(x.s))
	e.Uvarint(uint64(x.symbols))
	for _, c := range x.c {
		e.Uvarint(uint64(c))
	}
	x.bwt.EncodeTo(e)
	x.marked.EncodeTo(e)
	e.Int32s(x.saSamp)
	e.Int32s(x.isaSamp)
	e.Int32s(x.sepRows)
	e.Int32s(x.sepTargets)
	e.Int32s(x.docStarts)
	e.Uint64s(x.docIDs)
}

// AppendBinary appends the FM-index's portable form to buf (the
// snapshot fast-path contract).
func (x *Index) AppendBinary(buf []byte) ([]byte, error) {
	e := snap.Encoder{}
	x.EncodeTo(&e)
	return append(buf, e.Bytes()...), nil
}

// UnmarshalBinary replaces x with the index encoded in data. Corrupt or
// truncated input returns an error wrapping snap.ErrBadSnapshot; it
// never panics.
func (x *Index) UnmarshalBinary(data []byte) error {
	d := snap.NewDecoder(data)
	nx := &Index{}
	nx.n = d.Int()
	nx.s = d.Int()
	nx.symbols = d.Int()
	for i := range nx.c {
		nx.c[i] = d.Int()
	}
	bwt := wavelet.DecodeFrom(d)
	marked := bitvec.DecodeFrom(d)
	nx.saSamp = d.Int32s()
	nx.isaSamp = d.Int32s()
	nx.sepRows = d.Int32s()
	nx.sepTargets = d.Int32s()
	nx.docStarts = d.Int32s()
	nx.docIDs = d.Uint64s()
	if err := d.Err(); err != nil {
		return err
	}
	nx.bwt, nx.marked = bwt, marked
	if nx.s < 1 {
		d.Fail("fm: sample rate %d", nx.s)
	}
	if bwt.Len() != nx.n || marked.Len() != nx.n {
		d.Fail("fm: BWT %d / marks %d rows for n=%d", bwt.Len(), marked.Len(), nx.n)
	}
	if d.Err() == nil {
		prev := 0
		for b, c := range nx.c {
			if c < prev || c > nx.n {
				d.Fail("fm: C array not monotone at symbol %d", b)
				break
			}
			prev = c
		}
		if nx.c[256] != nx.n {
			d.Fail("fm: C[256] = %d, want %d", nx.c[256], nx.n)
		}
	}
	if d.Err() == nil && len(nx.saSamp) != marked.Ones() {
		d.Fail("fm: %d SA samples for %d marked rows", len(nx.saSamp), marked.Ones())
	}
	if d.Err() == nil && nx.n > 0 {
		if want := (nx.n-1)/nx.s + 2; len(nx.isaSamp) != want {
			d.Fail("fm: %d ISA samples, want %d", len(nx.isaSamp), want)
		}
	}
	if d.Err() == nil {
		checkRows(d, "fm SA samples", nx.saSamp, nx.n)
		checkRows(d, "fm ISA samples", nx.isaSamp, nx.n)
		checkRows(d, "fm separator rows", nx.sepRows, nx.n)
		checkRows(d, "fm separator targets", nx.sepTargets, nx.n)
	}
	if d.Err() == nil && len(nx.sepRows) != len(nx.sepTargets) {
		d.Fail("fm: %d separator rows for %d targets", len(nx.sepRows), len(nx.sepTargets))
	}
	if d.Err() == nil {
		for i := 1; i < len(nx.sepRows); i++ {
			if nx.sepRows[i] <= nx.sepRows[i-1] {
				d.Fail("fm: separator rows not increasing at %d", i)
				break
			}
		}
	}
	// Every separator row must be listed with an LF target, or lf()
	// would index past the target table; listed rows strictly increase
	// and must actually carry the separator, so equal counts pin the
	// listed set to exactly the BWT's separator positions.
	if d.Err() == nil {
		if bwt.Count(uint32(Sep)) != len(nx.sepRows) {
			d.Fail("fm: %d separator rows listed, BWT holds %d", len(nx.sepRows), bwt.Count(uint32(Sep)))
		}
		for _, r := range nx.sepRows {
			if bwt.Access(int(r)) != uint32(Sep) {
				d.Fail("fm: listed separator row %d is not a separator", r)
				break
			}
		}
	}
	// Locate walks LF until it hits a marked row; a non-empty index with
	// no marks would never terminate.
	if d.Err() == nil && nx.n > 0 && marked.Ones() == 0 {
		d.Fail("fm: non-empty index with no SA samples")
	}
	if d.Err() == nil {
		checkDocTable(d, nx.n, nx.docStarts, nx.docIDs, nx.symbols)
	}
	if err := d.Err(); err != nil {
		return err
	}
	nx.buildSymTable()
	*x = *nx
	return nil
}

// EncodeTo writes the suffix-array index's portable form into an
// encoder.
func (x *SAIndex) EncodeTo(e *snap.Encoder) {
	e.Blob(x.text)
	e.Int32s(x.suff)
	e.Int32s(x.inv)
	e.Int32s(x.docStarts)
	e.Uint64s(x.docIDs)
	e.Uvarint(uint64(x.symbols))
}

// AppendBinary appends the suffix-array index's portable form to buf.
func (x *SAIndex) AppendBinary(buf []byte) ([]byte, error) {
	e := snap.Encoder{}
	x.EncodeTo(&e)
	return append(buf, e.Bytes()...), nil
}

// UnmarshalBinary replaces x with the index encoded in data.
func (x *SAIndex) UnmarshalBinary(data []byte) error {
	d := snap.NewDecoder(data)
	nx := &SAIndex{}
	nx.text = append([]byte(nil), d.Blob()...)
	nx.suff = d.Int32s()
	nx.inv = d.Int32s()
	nx.docStarts = d.Int32s()
	nx.docIDs = d.Uint64s()
	nx.symbols = d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	n := len(nx.text)
	if len(nx.suff) != n || len(nx.inv) != n {
		d.Fail("sa: %d/%d suffix rows for %d text bytes", len(nx.suff), len(nx.inv), n)
	}
	if d.Err() == nil {
		checkRows(d, "sa suffix array", nx.suff, n)
		checkRows(d, "sa inverse", nx.inv, n)
	}
	if d.Err() == nil {
		checkDocTable(d, n, nx.docStarts, nx.docIDs, nx.symbols)
	}
	if err := d.Err(); err != nil {
		return err
	}
	*x = *nx
	return nil
}

// EncodeTo writes the compressed suffix array's portable form into an
// encoder.
func (x *CSA) EncodeTo(e *snap.Encoder) {
	e.Uvarint(uint64(x.n))
	e.Uvarint(uint64(x.s))
	e.Uvarint(uint64(x.symbols))
	for _, c := range x.c {
		e.Varint(int64(c))
	}
	e.Int32s(x.psiSamples)
	e.Blob(x.psiDeltas)
	e.Int32s(x.psiOffsets)
	e.Int32s(x.saSamp)
	x.saMarked.EncodeTo(e)
	e.Int32s(x.isaSamp)
	e.Int32s(x.docStarts)
	e.Uint64s(x.docIDs)
}

// AppendBinary appends the compressed suffix array's portable form to
// buf.
func (x *CSA) AppendBinary(buf []byte) ([]byte, error) {
	e := snap.Encoder{}
	x.EncodeTo(&e)
	return append(buf, e.Bytes()...), nil
}

// UnmarshalBinary replaces x with the index encoded in data.
func (x *CSA) UnmarshalBinary(data []byte) error {
	d := snap.NewDecoder(data)
	nx := &CSA{}
	nx.n = d.Int()
	nx.s = d.Int()
	nx.symbols = d.Int()
	for i := range nx.c {
		v := d.Varint()
		if v < -1<<31 || v > 1<<31-1 {
			d.Fail("csa: C entry %d overflows int32", v)
			break
		}
		nx.c[i] = int32(v)
	}
	nx.psiSamples = d.Int32s()
	nx.psiDeltas = append([]byte(nil), d.Blob()...)
	nx.psiOffsets = d.Int32s()
	nx.saSamp = d.Int32s()
	saMarked := bitvec.DecodeFrom(d)
	nx.isaSamp = d.Int32s()
	nx.docStarts = d.Int32s()
	nx.docIDs = d.Uint64s()
	if err := d.Err(); err != nil {
		return err
	}
	nx.saMarked = saMarked
	if nx.s < 1 {
		d.Fail("csa: sample rate %d", nx.s)
	}
	if saMarked.Len() != nx.n {
		d.Fail("csa: %d marked rows for n=%d", saMarked.Len(), nx.n)
	}
	if d.Err() == nil {
		prev := int32(0)
		for b, c := range nx.c {
			if c < prev || int(c) > nx.n {
				d.Fail("csa: C array not monotone at symbol %d", b)
				break
			}
			prev = c
		}
	}
	if d.Err() == nil {
		wantBlocks := 0
		if nx.n > 0 {
			wantBlocks = (nx.n-1)/psiBlock + 1
		}
		if len(nx.psiSamples) != wantBlocks || len(nx.psiOffsets) != wantBlocks {
			d.Fail("csa: %d/%d Ψ blocks, want %d", len(nx.psiSamples), len(nx.psiOffsets), wantBlocks)
		}
	}
	if d.Err() == nil {
		for i, off := range nx.psiOffsets {
			if int(off) < 0 || int(off) > len(nx.psiDeltas) || (i > 0 && off < nx.psiOffsets[i-1]) {
				d.Fail("csa: Ψ block offset %d out of order", off)
				break
			}
		}
	}
	if d.Err() == nil && len(nx.saSamp) != saMarked.Ones() {
		d.Fail("csa: %d SA samples for %d marked rows", len(nx.saSamp), saMarked.Ones())
	}
	// Locate walks Ψ until it hits a marked row; a non-empty index with
	// no marks would never terminate.
	if d.Err() == nil && nx.n > 0 && saMarked.Ones() == 0 {
		d.Fail("csa: non-empty index with no SA samples")
	}
	if d.Err() == nil && nx.n > 0 {
		if want := (nx.n + nx.s - 1) / nx.s; len(nx.isaSamp) != want {
			d.Fail("csa: %d ISA samples, want %d", len(nx.isaSamp), want)
		}
	}
	if d.Err() == nil {
		checkRows(d, "csa Ψ samples", nx.psiSamples, nx.n)
		checkRows(d, "csa SA samples", nx.saSamp, nx.n)
		checkRows(d, "csa ISA samples", nx.isaSamp, nx.n)
	}
	if d.Err() == nil {
		checkDocTable(d, nx.n, nx.docStarts, nx.docIDs, nx.symbols)
	}
	if err := d.Err(); err != nil {
		return err
	}
	nx.sym.build(nx.c, nx.n)
	*x = *nx
	return nil
}
