package fmindex

import (
	"bytes"
	"testing"

	"dyncoll/internal/doc"
	"dyncoll/internal/textgen"
)

func TestCSAAgreesWithFM(t *testing.T) {
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 6, MinLen: 5, MaxLen: 300, Seed: 505,
	})
	docs := gen.GenerateTotal(15_000)
	csa := BuildCSA(docs, Options{SampleRate: 4})
	fm := Build(docs, Options{SampleRate: 4})

	ps := textgen.NewPatternSampler(docs, 5)
	for _, l := range []int{1, 2, 4, 8, 16} {
		for i := 0; i < 8; i++ {
			for _, p := range [][]byte{ps.Planted(l), ps.Random(l, 6)} {
				a := allOccs(csa, p)
				b := allOccs(fm, p)
				if len(a) != len(b) {
					t.Fatalf("pattern %v: CSA %d occs, FM %d", p, len(a), len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("pattern %v: occ %d differs", p, j)
					}
				}
			}
		}
	}
}

func TestCSAPsiCycle(t *testing.T) {
	// Walking Ψ n times from the row of text position 0 must visit every
	// text position exactly once (Ψ is a permutation following text
	// order, wrapping at the end).
	docs := []doc.Doc{{ID: 1, Data: []byte("tobeornottobe")}}
	x := BuildCSA(docs, Options{SampleRate: 3})
	r := x.SuffixRank(0, 0)
	seen := make(map[int]bool)
	for i := 0; i < x.SALen(); i++ {
		if seen[r] {
			t.Fatalf("Ψ revisited row %d after %d steps", r, i)
		}
		seen[r] = true
		r = x.Psi(r)
	}
	if len(seen) != x.SALen() {
		t.Fatalf("Ψ cycle covered %d of %d rows", len(seen), x.SALen())
	}
}

func TestCSARoundTrips(t *testing.T) {
	docs := []doc.Doc{
		{ID: 1, Data: []byte("mississippi")},
		{ID: 2, Data: []byte("sip")},
		{ID: 3, Data: []byte("m")},
	}
	for _, s := range []int{1, 2, 4, 16} {
		x := BuildCSA(docs, Options{SampleRate: s})
		for d := 0; d < x.DocCount(); d++ {
			for off := 0; off < x.DocLen(d); off++ {
				row := x.SuffixRank(d, off)
				gd, go_ := x.Locate(row)
				if gd != d || go_ != off {
					t.Fatalf("s=%d: Locate(SuffixRank(%d,%d)) = (%d,%d)", s, d, off, gd, go_)
				}
			}
		}
	}
}

func TestCSAExtract(t *testing.T) {
	data := []byte("abracadabra")
	x := BuildCSA([]doc.Doc{{ID: 1, Data: data}}, Options{SampleRate: 4})
	for off := 0; off <= len(data); off++ {
		for l := 0; off+l <= len(data); l++ {
			got := x.Extract(0, off, l)
			want := data[off : off+l]
			if l == 0 {
				if got != nil {
					t.Fatalf("Extract(%d,0) = %v", off, got)
				}
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("Extract(%d,%d) = %q, want %q", off, l, got, want)
			}
		}
	}
	// Clamping.
	if got := x.Extract(0, -3, 2); !bytes.Equal(got, []byte("ab")) {
		t.Fatalf("negative off: %q", got)
	}
	if got := x.Extract(0, 9, 100); !bytes.Equal(got, []byte("ra")) {
		t.Fatalf("overlong: %q", got)
	}
}

func TestCSAEmpty(t *testing.T) {
	x := BuildCSA(nil, Options{})
	if x.SALen() != 0 || x.SymbolCount() != 0 || x.DocCount() != 0 {
		t.Fatal("empty CSA misbehaves")
	}
	lo, hi := x.Range([]byte{1})
	if lo != hi {
		t.Fatal("empty CSA matched something")
	}
}

func TestCSACompression(t *testing.T) {
	// On highly repetitive text the Ψ deltas are tiny; the CSA must be
	// much smaller than 32 bits/row.
	rep := bytes.Repeat([]byte("abcab"), 4000)
	x := BuildCSA([]doc.Doc{{ID: 1, Data: rep}}, Options{SampleRate: 32})
	bitsPerRow := float64(x.SizeBits()) / float64(x.SALen())
	if bitsPerRow > 16 {
		t.Fatalf("CSA on repetitive text costs %.1f bits/row", bitsPerRow)
	}
}

func TestCSAInFramework(t *testing.T) {
	// The CSA must satisfy core.StaticIndex structurally; this test keeps
	// the method set aligned without importing core (avoiding a cycle).
	var x interface {
		SALen() int
		SymbolCount() int
		DocCount() int
		DocID(i int) uint64
		DocLen(i int) int
		Range(pattern []byte) (int, int)
		Locate(row int) (int, int)
		SuffixRank(doc, off int) int
		Extract(doc, off, length int) []byte
		SizeBits() int64
	} = BuildCSA([]doc.Doc{{ID: 1, Data: []byte("xyz")}}, Options{})
	if x.SALen() != 4 {
		t.Fatalf("SALen = %d", x.SALen())
	}
}
