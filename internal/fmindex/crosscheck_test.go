package fmindex

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"dyncoll/internal/doc"
	"dyncoll/internal/textgen"
)

// occ is a (doc, off) pair for comparisons.
type occ struct{ d, o int }

func allOccs(x interface {
	Range(p []byte) (int, int)
	Locate(row int) (int, int)
}, p []byte) []occ {
	lo, hi := x.Range(p)
	out := make([]occ, 0, hi-lo)
	for r := lo; r < hi; r++ {
		d, o := x.Locate(r)
		out = append(out, occ{d, o})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].d != out[j].d {
			return out[i].d < out[j].d
		}
		return out[i].o < out[j].o
	})
	return out
}

// TestFMAgreesWithSAIndex cross-checks the two static indexes — built on
// completely different machinery (BWT backward search vs suffix-array
// binary search) — over random collections and patterns.
func TestFMAgreesWithSAIndex(t *testing.T) {
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 6, MinLen: 5, MaxLen: 300, Seed: 404,
	})
	docs := gen.GenerateTotal(20_000)
	fm := Build(docs, Options{SampleRate: 4})
	sa := BuildSA(docs)

	ps := textgen.NewPatternSampler(docs, 3)
	var pats [][]byte
	for _, l := range []int{1, 2, 3, 5, 9, 17} {
		for i := 0; i < 10; i++ {
			pats = append(pats, ps.Planted(l))
			pats = append(pats, ps.Random(l, 6))
		}
	}
	for _, p := range pats {
		a := allOccs(fm, p)
		b := allOccs(sa, p)
		if len(a) != len(b) {
			t.Fatalf("pattern %v: FM %d occs, SA %d occs", p, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("pattern %v: occ %d differs: %v vs %v", p, i, a[i], b[i])
			}
		}
	}
}

// TestFMSuffixRankLocateRoundTrip verifies SuffixRank and Locate are
// mutual inverses on every position.
func TestFMSuffixRankLocateRoundTrip(t *testing.T) {
	docs := []doc.Doc{
		{ID: 1, Data: []byte("mississippi")},
		{ID: 2, Data: []byte("sip")},
		{ID: 3, Data: []byte("p")},
	}
	for _, s := range []int{1, 2, 4, 16} {
		x := Build(docs, Options{SampleRate: s})
		for d := 0; d < x.DocCount(); d++ {
			for off := 0; off < x.DocLen(d); off++ {
				row := x.SuffixRank(d, off)
				gd, go_ := x.Locate(row)
				if gd != d || go_ != off {
					t.Fatalf("s=%d: Locate(SuffixRank(%d,%d)) = (%d,%d)", s, d, off, gd, go_)
				}
			}
		}
	}
}

// TestFMLFWalk verifies the exposed LF mapping traverses a document's
// suffix rows in decreasing offset order.
func TestFMLFWalk(t *testing.T) {
	docs := []doc.Doc{{ID: 7, Data: []byte("abracadabra")}}
	x := Build(docs, Options{SampleRate: 4})
	dl := x.DocLen(0)
	row := x.SuffixRank(0, dl) // separator row
	for off := dl; off > 0; off-- {
		next := x.LF(row)
		d, o := x.Locate(next)
		if d != 0 || o != off-1 {
			t.Fatalf("LF from off %d landed at (%d,%d)", off, d, o)
		}
		row = next
	}
}

// TestFMExtractClamping checks boundary clamping.
func TestFMExtractClamping(t *testing.T) {
	x := Build([]doc.Doc{{ID: 1, Data: []byte{9, 8, 7}}}, Options{})
	if got := x.Extract(0, -5, 2); !bytes.Equal(got, []byte{9, 8}) {
		t.Fatalf("negative offset: %v", got)
	}
	if got := x.Extract(0, 1, 100); !bytes.Equal(got, []byte{8, 7}) {
		t.Fatalf("overlong: %v", got)
	}
	if got := x.Extract(0, 10, 5); got != nil {
		t.Fatalf("past end: %v", got)
	}
	if got := x.Extract(0, 1, 0); got != nil {
		t.Fatalf("zero length: %v", got)
	}
}

// TestFMEmptyAndTinyDocs covers zero-length documents among normal ones.
func TestFMEmptyAndTinyDocs(t *testing.T) {
	docs := []doc.Doc{
		{ID: 1, Data: nil},
		{ID: 2, Data: []byte{3}},
		{ID: 3, Data: nil},
		{ID: 4, Data: []byte{3, 3}},
	}
	x := Build(docs, Options{SampleRate: 2})
	if x.SymbolCount() != 3 {
		t.Fatalf("SymbolCount = %d", x.SymbolCount())
	}
	lo, hi := x.Range([]byte{3})
	if hi-lo != 3 {
		t.Fatalf("Range(3) width = %d", hi-lo)
	}
	if x.DocLen(0) != 0 || x.DocLen(1) != 1 {
		t.Fatal("DocLen wrong")
	}
}

// TestFMFullAlphabet uses all 255 payload byte values.
func TestFMFullAlphabet(t *testing.T) {
	data := make([]byte, 255)
	for i := range data {
		data[i] = byte(i + 1)
	}
	x := Build([]doc.Doc{{ID: 1, Data: data}}, Options{SampleRate: 4})
	for i := 0; i < 255; i++ {
		lo, hi := x.Range(data[i : i+1])
		if hi-lo != 1 {
			t.Fatalf("byte %d: width %d", i+1, hi-lo)
		}
		d, off := x.Locate(lo)
		if d != 0 || off != i {
			t.Fatalf("byte %d located at (%d,%d)", i+1, d, off)
		}
	}
	if got := x.Extract(0, 0, 255); !bytes.Equal(got, data) {
		t.Fatal("full extract mismatch")
	}
}

// TestFMQuickVsNaive is a property test of Count against brute force.
func TestFMQuickVsNaive(t *testing.T) {
	f := func(raw []byte, praw []byte) bool {
		if len(raw) == 0 {
			raw = []byte{1}
		}
		if len(raw) > 300 {
			raw = raw[:300]
		}
		data := make([]byte, len(raw))
		for i, b := range raw {
			data[i] = b%5 + 1
		}
		if len(praw) > 6 {
			praw = praw[:6]
		}
		p := make([]byte, len(praw))
		for i, b := range praw {
			p[i] = b%5 + 1
		}
		if len(p) == 0 {
			p = []byte{1}
		}
		x := Build([]doc.Doc{{ID: 1, Data: data}}, Options{SampleRate: 3})
		lo, hi := x.Range(p)
		want := 0
		for off := 0; off+len(p) <= len(data); off++ {
			if bytes.Equal(data[off:off+len(p)], p) {
				want++
			}
		}
		return hi-lo == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSAIndexSuffixRank mirrors the round-trip test for the plain index.
func TestSAIndexSuffixRank(t *testing.T) {
	docs := []doc.Doc{
		{ID: 1, Data: []byte("banana")},
		{ID: 2, Data: []byte("bandana")},
	}
	x := BuildSA(docs)
	for d := 0; d < x.DocCount(); d++ {
		for off := 0; off <= x.DocLen(d); off++ {
			row := x.SuffixRank(d, off)
			if off == x.DocLen(d) {
				continue // separator rows don't locate to payload
			}
			gd, go_ := x.Locate(row)
			if gd != d || go_ != off {
				t.Fatalf("Locate(SuffixRank(%d,%d)) = (%d,%d)", d, off, gd, go_)
			}
		}
	}
}
