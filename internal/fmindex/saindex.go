package fmindex

import (
	"bytes"
	"sort"

	"dyncoll/internal/sa"
)

// SAIndex is a plain suffix-array index over a document collection: the
// concatenated text plus its explicit suffix array and inverse.
//
// It realizes the O(n log σ)-bit regime of Table 3 (Grossi–Vitter):
// range-finding by binary search with word-packed comparisons
// (bytes.Compare compares eight bytes per step, the |P|/log_σ n effect),
// tlocate = O(1), textract = O(ℓ/w) memcpy. We store the suffix array
// explicitly rather than as a compressed Ψ-function — the Grossi–Vitter
// CSA machinery is orthogonal to the dynamization the paper studies, and
// storing SA outright only relaxes the constant in front of n log n bits
// of redundancy (see DESIGN.md §2). The (doc, offset) interface matches
// *Index exactly, so SAIndex plugs into the same transformations.
type SAIndex struct {
	text      []byte
	suff      []int32
	inv       []int32
	docStarts []int32
	docIDs    []uint64
	symbols   int
}

// BuildSA constructs a SAIndex over the given documents.
func BuildSA(docs []Doc) *SAIndex {
	total := 0
	for _, d := range docs {
		total += len(d.Data) + 1
	}
	x := &SAIndex{
		text:      make([]byte, 0, total),
		docStarts: make([]int32, len(docs)),
		docIDs:    make([]uint64, len(docs)),
	}
	for i, d := range docs {
		x.docStarts[i] = int32(len(x.text))
		x.docIDs[i] = d.ID
		for _, b := range d.Data {
			if b == Sep {
				panic("fmindex: document contains the reserved separator byte 0x00")
			}
		}
		x.text = append(x.text, d.Data...)
		x.text = append(x.text, Sep)
		x.symbols += len(d.Data)
	}
	if len(x.text) > 0 {
		x.suff = sa.SuffixArray(x.text)
		x.inv = make([]int32, len(x.suff))
		for i, p := range x.suff {
			x.inv[p] = int32(i)
		}
	}
	return x
}

// SALen reports the number of suffix-array rows.
func (x *SAIndex) SALen() int { return len(x.text) }

// SymbolCount reports total document symbols excluding separators.
func (x *SAIndex) SymbolCount() int { return x.symbols }

// DocCount reports the number of documents.
func (x *SAIndex) DocCount() int { return len(x.docIDs) }

// DocID returns the application identifier of the i-th document.
func (x *SAIndex) DocID(i int) uint64 { return x.docIDs[i] }

// DocLen returns the payload length of the i-th document.
func (x *SAIndex) DocLen(i int) int {
	end := len(x.text)
	if i+1 < len(x.docStarts) {
		end = int(x.docStarts[i+1])
	}
	return end - int(x.docStarts[i]) - 1
}

// Range returns the half-open suffix-array interval of the pattern via
// two binary searches with word-packed comparisons.
func (x *SAIndex) Range(pattern []byte) (lo, hi int) {
	n := len(x.suff)
	if len(pattern) == 0 {
		return 0, n
	}
	lo = sort.Search(n, func(i int) bool {
		return bytes.Compare(x.suffixAt(i, len(pattern)), pattern) >= 0
	})
	hi = sort.Search(n, func(i int) bool {
		return bytes.Compare(x.suffixAt(i, len(pattern)), pattern) > 0
	})
	return lo, hi
}

func (x *SAIndex) suffixAt(row, maxLen int) []byte {
	p := int(x.suff[row])
	end := p + maxLen
	if end > len(x.text) {
		end = len(x.text)
	}
	return x.text[p:end]
}

// Locate maps a suffix-array row to (document, offset) in O(log ρ) time.
func (x *SAIndex) Locate(row int) (doc, off int) {
	pos := int(x.suff[row])
	doc = sort.Search(len(x.docStarts), func(i int) bool {
		return int(x.docStarts[i]) > pos
	}) - 1
	return doc, pos - int(x.docStarts[doc])
}

// SuffixRank returns the suffix-array row of (doc, off) in O(1) time.
func (x *SAIndex) SuffixRank(doc, off int) int {
	return int(x.inv[int(x.docStarts[doc])+off])
}

// Extract copies length symbols of doc starting at off.
func (x *SAIndex) Extract(doc, off, length int) []byte {
	dl := x.DocLen(doc)
	if off < 0 {
		off = 0
	}
	if off > dl {
		off = dl
	}
	if off+length > dl {
		length = dl - off
	}
	if length <= 0 {
		return nil
	}
	start := int(x.docStarts[doc]) + off
	out := make([]byte, length)
	copy(out, x.text[start:start+length])
	return out
}

// SizeBits estimates the index footprint in bits.
func (x *SAIndex) SizeBits() int64 {
	return int64(len(x.text))*8 +
		int64(len(x.suff)+len(x.inv)+len(x.docStarts))*32 +
		int64(len(x.docIDs))*64
}
