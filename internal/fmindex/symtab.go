package fmindex

// symTable maps a suffix-array row to the first symbol of its suffix —
// the inverse of the C array — without the per-call closure and binary
// search the hot loops used to pay. Extract and the CSA's pattern
// comparison resolve a symbol per step, so this sits directly on the
// per-symbol path.
//
// A sampled table indexed by row>>shift names the symbol covering the
// sample row; the monotone C boundaries are then scanned forward, which
// is O(symbols spanned by one sample block) — near-always zero or one
// step. The table is a deterministic function of the C array, so it is
// rebuilt on load and never serialized (the snapshot wire format is
// unchanged).
type symTable struct {
	shift uint
	tab   []uint8
	bound [257]int32 // bound[b] = first row of symbol b; bound[256] = n
}

// build derives the table from the C boundaries over n rows.
func (st *symTable) build(bound [257]int32, n int) {
	st.bound = bound
	// Terminate every forward scan at symbol 255 even if a (crafted)
	// boundary table ends short of n.
	if st.bound[256] < int32(n) {
		st.bound[256] = int32(n)
	}
	st.shift = 0
	if n <= 0 {
		st.tab = st.tab[:0]
		return
	}
	for n>>st.shift > 4096 {
		st.shift++
	}
	entries := (n-1)>>st.shift + 1
	if cap(st.tab) < entries {
		st.tab = make([]uint8, entries)
	}
	st.tab = st.tab[:entries]
	b := 0
	for q := 0; q < entries; q++ {
		row := int32(q) << st.shift
		for st.bound[b+1] <= row {
			b++
		}
		st.tab[q] = uint8(b)
	}
}

// at returns the symbol whose C-range covers row.
func (st *symTable) at(row int) byte {
	b := int(st.tab[row>>st.shift])
	for st.bound[b+1] <= int32(row) {
		b++
	}
	return byte(b)
}
