package fmindex

import (
	"bytes"
	"math/rand"
	"testing"

	"dyncoll/internal/doc"
	"dyncoll/internal/snap"
)

// marshalable is the snapshot fast-path contract all three built-in
// indexes implement.
type marshalable interface {
	AppendBinary(buf []byte) ([]byte, error)
}

func testDocs(n int, rng *rand.Rand) []doc.Doc {
	docs := make([]doc.Doc, n)
	for i := range docs {
		data := make([]byte, rng.Intn(40)+1)
		for j := range data {
			data[j] = byte(rng.Intn(4)) + 'a'
		}
		docs[i] = doc.Doc{ID: uint64(i + 1), Data: data}
	}
	return docs
}

// TestMarshalRoundTrip serializes each index family and checks the
// reloaded index answers Range/Locate/Extract/SuffixRank identically.
func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs := testDocs(30, rng)
	patterns := [][]byte{[]byte("a"), []byte("ab"), []byte("abc"), []byte("dd"), []byte("zzz"), {}}

	cases := []struct {
		name string
		x    interface {
			marshalable
			SALen() int
			DocCount() int
			DocID(int) uint64
			DocLen(int) int
			Range([]byte) (int, int)
			Locate(int) (int, int)
			SuffixRank(int, int) int
			Extract(int, int, int) []byte
		}
		fresh func(data []byte) (any, error)
	}{
		{"fm", Build(docs, Options{SampleRate: 4}), func(data []byte) (any, error) {
			y := &Index{}
			return y, y.UnmarshalBinary(data)
		}},
		{"sa", BuildSA(docs), func(data []byte) (any, error) {
			y := &SAIndex{}
			return y, y.UnmarshalBinary(data)
		}},
		{"csa", BuildCSA(docs, Options{SampleRate: 4}), func(data []byte) (any, error) {
			y := &CSA{}
			return y, y.UnmarshalBinary(data)
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := tc.x.AppendBinary(nil)
			if err != nil {
				t.Fatalf("AppendBinary: %v", err)
			}
			yAny, err := tc.fresh(data)
			if err != nil {
				t.Fatalf("UnmarshalBinary: %v", err)
			}
			y := yAny.(interface {
				SALen() int
				DocCount() int
				DocID(int) uint64
				DocLen(int) int
				Range([]byte) (int, int)
				Locate(int) (int, int)
				SuffixRank(int, int) int
				Extract(int, int, int) []byte
			})
			if y.SALen() != tc.x.SALen() || y.DocCount() != tc.x.DocCount() {
				t.Fatalf("shape mismatch: %d/%d rows, %d/%d docs",
					y.SALen(), tc.x.SALen(), y.DocCount(), tc.x.DocCount())
			}
			for i := 0; i < tc.x.DocCount(); i++ {
				if y.DocID(i) != tc.x.DocID(i) || y.DocLen(i) != tc.x.DocLen(i) {
					t.Fatalf("doc %d mismatch", i)
				}
				if got, want := y.Extract(i, 0, y.DocLen(i)), tc.x.Extract(i, 0, tc.x.DocLen(i)); !bytes.Equal(got, want) {
					t.Fatalf("doc %d extract %q != %q", i, got, want)
				}
			}
			for _, p := range patterns {
				lo1, hi1 := tc.x.Range(p)
				lo2, hi2 := y.Range(p)
				if lo1 != lo2 || hi1 != hi2 {
					t.Fatalf("Range(%q) = [%d,%d) != [%d,%d)", p, lo2, hi2, lo1, hi1)
				}
			}
			for row := 0; row < tc.x.SALen(); row += 7 {
				d1, o1 := tc.x.Locate(row)
				d2, o2 := y.Locate(row)
				if d1 != d2 || o1 != o2 {
					t.Fatalf("Locate(%d) = (%d,%d) != (%d,%d)", row, d2, o2, d1, o1)
				}
				if tc.x.SuffixRank(d1, o1) != y.SuffixRank(d1, o1) {
					t.Fatalf("SuffixRank(%d,%d) mismatch", d1, o1)
				}
			}
		})
	}
}

// TestMarshalEmpty round-trips indexes built over zero documents.
func TestMarshalEmpty(t *testing.T) {
	for _, x := range []marshalable{
		Build(nil, Options{}),
		BuildSA(nil),
		BuildCSA(nil, Options{}),
	} {
		data, err := x.AppendBinary(nil)
		if err != nil {
			t.Fatalf("empty AppendBinary: %v", err)
		}
		var err2 error
		switch x.(type) {
		case *Index:
			err2 = new(Index).UnmarshalBinary(data)
		case *SAIndex:
			err2 = new(SAIndex).UnmarshalBinary(data)
		case *CSA:
			err2 = new(CSA).UnmarshalBinary(data)
		}
		if err2 != nil {
			t.Fatalf("empty UnmarshalBinary: %v", err2)
		}
	}
}

// TestMarshalCorrupt mutates every byte position of a small encoded
// index and checks decode never panics — it either errors with
// ErrBadSnapshot or yields some index.
func TestMarshalCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	docs := testDocs(6, rng)
	for _, build := range []func() marshalable{
		func() marshalable { return Build(docs, Options{SampleRate: 4}) },
		func() marshalable { return BuildSA(docs) },
		func() marshalable { return BuildCSA(docs, Options{SampleRate: 4}) },
	} {
		x := build()
		data, err := x.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		decode := func(p []byte) error {
			switch x.(type) {
			case *Index:
				return new(Index).UnmarshalBinary(p)
			case *SAIndex:
				return new(SAIndex).UnmarshalBinary(p)
			case *CSA:
				return new(CSA).UnmarshalBinary(p)
			}
			return nil
		}
		// Truncations.
		for cut := 0; cut < len(data); cut += 11 {
			if err := decode(data[:cut]); err == nil {
				t.Fatalf("truncation at %d decoded cleanly", cut)
			}
		}
		// Single-byte mutations (panic = test failure).
		for pos := 0; pos < len(data); pos++ {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 0x5b
			_ = decode(mut)
		}
		_ = snap.ErrBadSnapshot
	}
}
