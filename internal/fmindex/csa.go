package fmindex

import (
	"bytes"
	"fmt"
	"sort"

	"dyncoll/internal/bitvec"
	"dyncoll/internal/sa"
)

// CSA is a compressed suffix array in the style of Sadakane (Table 1 row
// [39]): instead of the BWT it stores the Ψ function — Ψ(i) is the
// suffix-array row of the suffix one position *later* in the text — in a
// delta-compressed form, plus the C array and sampled SA/ISA entries.
//
//   - Range-finding: binary search over suffix-array rows, comparing the
//     pattern against a suffix by walking Ψ (O(|P| log n)).
//   - Locate: walk Ψ forward to the next sampled row (O(s)).
//   - Extract: jump to an ISA sample, then one symbol per Ψ step
//     (O(s + ℓ)).
//
// Ψ is increasing within each first-symbol run, so its deltas are small
// on compressible text; they are stored varint-encoded in blocks with
// absolute samples, giving a compressed representation that needs no
// rank/select machinery at all — a genuinely different index family from
// the FM-index, exercising the framework's index-agnosticism.
type CSA struct {
	n int // rows (total symbols including separators)

	c [257]int32 // c[b] = first row whose suffix starts with symbol b

	// Ψ storage: blocks of psiBlock entries; psiSamples holds the
	// absolute value at each block start, psiDeltas the varint-encoded
	// positive deltas within a block (Ψ restarts are encoded absolutely
	// via a zero marker since Ψ only decreases across first-symbol runs).
	psiSamples []int32
	psiDeltas  []byte
	psiOffsets []int32 // byte offset of each block in psiDeltas

	s        int // sampling rate
	saSamp   []int32
	saMarked *bitvec.Vector
	isaSamp  []int32

	docStarts []int32
	docIDs    []uint64
	symbols   int

	// sym resolves a row's first symbol without the binary search over
	// the C array; derived from c, rebuilt on load, never serialized.
	sym symTable
}

const psiBlock = 64

// BuildCSA constructs the compressed suffix array over docs. Like
// Build, it checks its construction scratch out of the shared pool and
// validates payloads with the vectorized separator scan.
func BuildCSA(docs []Doc, opts Options) *CSA {
	opts = opts.withDefaults()
	total := 0
	for _, d := range docs {
		total += len(d.Data) + 1
	}
	sc := scratchPool.Get().(*buildScratch)
	text := sa.Grow(sc.text, total)[:0]
	x := &CSA{s: opts.SampleRate}
	for _, d := range docs {
		if j := bytes.IndexByte(d.Data, 0); j >= 0 {
			panic(fmt.Sprintf("fmindex: document %d contains the reserved separator byte 0x00 at offset %d", d.ID, j))
		}
		x.docStarts = append(x.docStarts, int32(len(text)))
		x.docIDs = append(x.docIDs, d.ID)
		x.symbols += len(d.Data)
		text = append(text, d.Data...)
		text = append(text, 0)
	}
	sc.text = text
	x.n = len(text)
	if x.n == 0 {
		x.saMarked = bitvec.New(0)
		x.saMarked.Seal()
		x.sym.build(x.c, 0)
		scratchPool.Put(sc)
		return x
	}

	suf := sa.SuffixArrayWS(text, &sc.saws)
	inv := sa.Grow(sc.inv, x.n)
	for i, p := range suf {
		inv[p] = int32(i)
	}
	sc.inv = inv

	// C array over the first column.
	var counts [257]int32
	for _, b := range text {
		counts[b]++
	}
	var acc int32
	for b := 0; b < 257; b++ {
		x.c[b] = acc
		if b < 256 {
			acc += counts[b]
		}
	}

	// Ψ[i] = inv[suf[i]+1], wrapping each position to row of the suffix
	// one later; the last text position wraps to the row of suffix 0 so
	// every walk stays total (never followed across separators in
	// practice because samples stop it first).
	psi := sa.Grow(sc.psi, x.n)
	for i := 0; i < x.n; i++ {
		p := int(suf[i]) + 1
		if p == x.n {
			p = 0
		}
		psi[i] = inv[p]
	}
	sc.psi = psi
	x.encodePsi(psi)

	// SA samples at text positions ≡ 0 (mod s), marked per row so Locate
	// can stop its Ψ walk, plus ISA samples for every s-th text position.
	marked := bitvec.New(0)
	for i := 0; i < x.n; i++ {
		sampled := int(suf[i])%x.s == 0
		if sampled {
			x.saSamp = append(x.saSamp, suf[i])
		}
		marked.AppendBit(sampled)
	}
	marked.Seal()
	x.saMarked = marked

	x.isaSamp = make([]int32, (x.n+x.s-1)/x.s)
	for p := 0; p < x.n; p += x.s {
		x.isaSamp[p/x.s] = inv[p]
	}
	x.sym.build(x.c, x.n)
	scratchPool.Put(sc)
	return x
}

// encodePsi delta-encodes Ψ in blocks.
func (x *CSA) encodePsi(psi []int32) {
	for i, v := range psi {
		if i%psiBlock == 0 {
			x.psiSamples = append(x.psiSamples, v)
			x.psiOffsets = append(x.psiOffsets, int32(len(x.psiDeltas)))
			continue
		}
		prev := psi[i-1]
		delta := int64(v) - int64(prev)
		// ZigZag so occasional decreases (run boundaries) stay compact.
		u := uint64(delta<<1) ^ uint64(delta>>63)
		for u >= 0x80 {
			x.psiDeltas = append(x.psiDeltas, byte(u)|0x80)
			u >>= 7
		}
		x.psiDeltas = append(x.psiDeltas, byte(u))
	}
}

// Psi returns Ψ(row): the row of the suffix starting one text position
// later. It decodes the row's block up to the requested entry (O(psiBlock)
// byte operations, a constant).
func (x *CSA) Psi(row int) int {
	if row < 0 || row >= x.n {
		panic(fmt.Sprintf("fmindex: Psi(%d) out of range", row))
	}
	b := row / psiBlock
	v := int64(x.psiSamples[b])
	pos := int(x.psiOffsets[b])
	for i := b*psiBlock + 1; i <= row; i++ {
		var u uint64
		shift := 0
		for {
			c := x.psiDeltas[pos]
			pos++
			u |= uint64(c&0x7f) << shift
			if c < 0x80 {
				break
			}
			shift += 7
		}
		delta := int64(u>>1) ^ -int64(u&1)
		v += delta
	}
	return int(v)
}

// firstSymbol returns the first symbol of the suffix at the given row
// via the sampled row→symbol table; the binary search it replaces ran
// once per Ψ step in Extract and per compared symbol in Range.
func (x *CSA) firstSymbol(row int) byte {
	return x.sym.at(row)
}

// SALen reports the number of suffix-array rows.
func (x *CSA) SALen() int { return x.n }

// SymbolCount reports total payload symbols.
func (x *CSA) SymbolCount() int { return x.symbols }

// DocCount reports the number of documents.
func (x *CSA) DocCount() int { return len(x.docIDs) }

// DocID returns the application ID of the i-th document.
func (x *CSA) DocID(i int) uint64 { return x.docIDs[i] }

// DocLen returns the payload length of the i-th document.
func (x *CSA) DocLen(i int) int {
	end := x.n
	if i+1 < len(x.docStarts) {
		end = int(x.docStarts[i+1])
	}
	return end - int(x.docStarts[i]) - 1
}

// SampleRate reports the sampling rate s.
func (x *CSA) SampleRate() int { return x.s }

// compareSuffix lexicographically compares pattern against the suffix at
// row, reading suffix symbols by walking Ψ. Separators (symbol 0)
// terminate the suffix as smallest.
func (x *CSA) compareSuffix(pattern []byte, row int) int {
	r := row
	for i := 0; i < len(pattern); i++ {
		c := x.firstSymbol(r)
		if c == 0 {
			return +1 // suffix exhausted → suffix < pattern
		}
		if pattern[i] != c {
			if pattern[i] < c {
				return -1
			}
			return +1
		}
		r = x.Psi(r)
	}
	return 0
}

// Range returns the half-open row interval of suffixes starting with
// pattern via binary search (O(|P| log n) Ψ steps). The upper-bound
// search is fused with the lower one: it restarts from lo instead of
// row 0 — one extra comparison decides emptiness, and the second
// search only bisects the [lo, n) tail.
func (x *CSA) Range(pattern []byte) (lo, hi int) {
	if len(pattern) == 0 {
		return 0, x.n
	}
	lo = sort.Search(x.n, func(i int) bool { return x.compareSuffix(pattern, i) <= 0 })
	if lo == x.n || x.compareSuffix(pattern, lo) != 0 {
		return lo, lo
	}
	hi = lo + 1 + sort.Search(x.n-lo-1, func(i int) bool { return x.compareSuffix(pattern, lo+1+i) < 0 })
	return lo, hi
}

// Locate maps a row to (document index, offset) by walking Ψ to the next
// sampled row (at most s-1 steps).
func (x *CSA) Locate(row int) (doc, off int) {
	steps := 0
	r := row
	for !x.saMarked.Get(r) {
		r = x.Psi(r)
		steps++
	}
	pos := int(x.saSamp[x.saMarked.Rank1(r)]) - steps
	if pos < 0 {
		pos += x.n
	}
	return x.posToDoc(pos)
}

func (x *CSA) posToDoc(pos int) (doc, off int) {
	d := sort.Search(len(x.docStarts), func(i int) bool { return int(x.docStarts[i]) > pos }) - 1
	return d, pos - int(x.docStarts[d])
}

// SuffixRank returns the row of the suffix starting at (doc, off): jump
// to the preceding ISA sample and walk Ψ forward (at most s-1 steps).
func (x *CSA) SuffixRank(doc, off int) int {
	pos := int(x.docStarts[doc]) + off
	if pos < 0 || pos >= x.n {
		panic(fmt.Sprintf("fmindex: SuffixRank position %d out of range", pos))
	}
	r := int(x.isaSamp[pos/x.s])
	for i := pos / x.s * x.s; i < pos; i++ {
		r = x.Psi(r)
	}
	return r
}

// Psi walks move forward in the text, so the framework's fast-deletion
// hook (which needs backward LF) is not available; SemiDynamic falls back
// to per-offset SuffixRank walks of O(s) each.

// Extract returns length payload symbols of doc starting at off: one ISA
// jump then one Ψ step per symbol (O(s + ℓ)).
func (x *CSA) Extract(doc, off, length int) []byte {
	dl := x.DocLen(doc)
	if off < 0 {
		off = 0
	}
	if off > dl {
		off = dl
	}
	if off+length > dl {
		length = dl - off
	}
	if length <= 0 {
		return nil
	}
	r := x.SuffixRank(doc, off)
	out := make([]byte, length)
	for i := 0; i < length; i++ {
		out[i] = x.firstSymbol(r)
		r = x.Psi(r)
	}
	return out
}

// SizeBits estimates the index footprint.
func (x *CSA) SizeBits() int64 {
	total := int64(len(x.psiSamples))*32 + int64(len(x.psiDeltas))*8 +
		int64(len(x.psiOffsets))*32 +
		int64(len(x.saSamp))*32 + int64(len(x.isaSamp))*32 +
		int64(len(x.docStarts))*32 + int64(len(x.docIDs))*64 + 257*32
	total += x.saMarked.SizeBits()
	return total
}
