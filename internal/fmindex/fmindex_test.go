package fmindex

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// collection is a reference model over a set of documents.
type collection []Doc

// occurrences finds all (docIdx, offset) pairs where pattern occurs.
func (c collection) occurrences(pattern []byte) [][2]int {
	var out [][2]int
	for d, doc := range c {
		for off := 0; off+len(pattern) <= len(doc.Data); off++ {
			if bytes.Equal(doc.Data[off:off+len(pattern)], pattern) {
				out = append(out, [2]int{d, off})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func randomDocs(rng *rand.Rand, nDocs, maxLen, sigma int) collection {
	docs := make(collection, nDocs)
	for i := range docs {
		data := make([]byte, 1+rng.Intn(maxLen))
		for j := range data {
			data[j] = byte(1 + rng.Intn(sigma))
		}
		docs[i] = Doc{ID: uint64(i + 1), Data: data}
	}
	return docs
}

// searcher is the common query interface of Index and SAIndex.
type searcher interface {
	SALen() int
	SymbolCount() int
	DocCount() int
	DocID(i int) uint64
	DocLen(i int) int
	Range(pattern []byte) (lo, hi int)
	Locate(row int) (doc, off int)
	SuffixRank(doc, off int) int
	Extract(doc, off, length int) []byte
	SizeBits() int64
}

var indexBuilders = map[string]func(docs []Doc) searcher{
	"fm":  func(docs []Doc) searcher { return Build(docs, Options{SampleRate: 4}) },
	"fm1": func(docs []Doc) searcher { return Build(docs, Options{SampleRate: 1}) },
	"sa":  func(docs []Doc) searcher { return BuildSA(docs) },
}

// findAll runs range + locate and returns sorted (doc, off) pairs,
// filtering out any separator hits (there should be none for non-empty
// patterns).
func findAll(x searcher, pattern []byte) [][2]int {
	lo, hi := x.Range(pattern)
	var out [][2]int
	for row := lo; row < hi; row++ {
		d, off := x.Locate(row)
		out = append(out, [2]int{d, off})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func pairsEqual(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyIndex(t *testing.T) {
	for name, mk := range indexBuilders {
		x := mk(nil)
		if x.SALen() != 0 || x.DocCount() != 0 || x.SymbolCount() != 0 {
			t.Fatalf("%s: empty index has content", name)
		}
		lo, hi := x.Range([]byte("a"))
		if lo != hi {
			t.Fatalf("%s: empty index matched a pattern", name)
		}
	}
}

func TestSingleDoc(t *testing.T) {
	docs := collection{{ID: 9, Data: []byte("banana")}}
	for name, mk := range indexBuilders {
		x := mk(docs)
		if x.DocCount() != 1 || x.DocID(0) != 9 || x.DocLen(0) != 6 {
			t.Fatalf("%s: doc metadata wrong", name)
		}
		if x.SymbolCount() != 6 || x.SALen() != 7 {
			t.Fatalf("%s: sizes wrong: symbols=%d salen=%d", name, x.SymbolCount(), x.SALen())
		}
		got := findAll(x, []byte("ana"))
		want := [][2]int{{0, 1}, {0, 3}}
		if !pairsEqual(got, want) {
			t.Fatalf("%s: ana occurrences = %v, want %v", name, got, want)
		}
		if got := findAll(x, []byte("nab")); len(got) != 0 {
			t.Fatalf("%s: phantom match %v", name, got)
		}
		if got := x.Extract(0, 1, 4); !bytes.Equal(got, []byte("anan")) {
			t.Fatalf("%s: Extract = %q", name, got)
		}
	}
}

func TestMultiDocAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, mk := range indexBuilders {
		for _, sigma := range []int{2, 4, 26} {
			docs := randomDocs(rng, 20, 200, sigma)
			x := mk(docs)
			for trial := 0; trial < 60; trial++ {
				// Half planted patterns, half random.
				var pattern []byte
				if trial%2 == 0 {
					d := rng.Intn(len(docs))
					data := docs[d].Data
					off := rng.Intn(len(data))
					l := 1 + rng.Intn(min(6, len(data)-off))
					pattern = append([]byte{}, data[off:off+l]...)
				} else {
					pattern = make([]byte, 1+rng.Intn(5))
					for j := range pattern {
						pattern[j] = byte(1 + rng.Intn(sigma))
					}
				}
				got := findAll(x, pattern)
				want := docs.occurrences(pattern)
				if !pairsEqual(got, want) {
					t.Fatalf("%s σ=%d: pattern %q: got %v, want %v", name, sigma, pattern, got, want)
				}
			}
		}
	}
}

func TestPatternSpanningDocsNeverMatches(t *testing.T) {
	docs := collection{
		{ID: 1, Data: []byte("abc")},
		{ID: 2, Data: []byte("def")},
	}
	for name, mk := range indexBuilders {
		x := mk(docs)
		if got := findAll(x, []byte("cd")); len(got) != 0 {
			t.Fatalf("%s: cross-document match %v", name, got)
		}
		if got := findAll(x, []byte("cdef")); len(got) != 0 {
			t.Fatalf("%s: cross-document match %v", name, got)
		}
	}
}

func TestEmptyPatternMatchesEverything(t *testing.T) {
	docs := collection{{ID: 1, Data: []byte("xy")}}
	for name, mk := range indexBuilders {
		x := mk(docs)
		lo, hi := x.Range(nil)
		if hi-lo != x.SALen() {
			t.Fatalf("%s: empty pattern range [%d,%d)", name, lo, hi)
		}
	}
}

func TestSuffixRankRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	docs := randomDocs(rng, 10, 100, 8)
	for name, mk := range indexBuilders {
		x := mk(docs)
		for d := 0; d < x.DocCount(); d++ {
			for off := 0; off <= x.DocLen(d); off += 1 + off/7 {
				row := x.SuffixRank(d, off)
				gd, goff := x.Locate(row)
				if gd != d || goff != off {
					t.Fatalf("%s: SuffixRank/Locate round trip (%d,%d) → row %d → (%d,%d)",
						name, d, off, row, gd, goff)
				}
			}
		}
	}
}

func TestExtractFullDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	docs := randomDocs(rng, 15, 150, 26)
	for name, mk := range indexBuilders {
		x := mk(docs)
		for d, doc := range docs {
			if got := x.Extract(d, 0, len(doc.Data)); !bytes.Equal(got, doc.Data) {
				t.Fatalf("%s: full extract of doc %d wrong", name, d)
			}
		}
	}
}

func TestExtractClamping(t *testing.T) {
	docs := collection{{ID: 1, Data: []byte("hello")}}
	for name, mk := range indexBuilders {
		x := mk(docs)
		if got := x.Extract(0, 3, 100); !bytes.Equal(got, []byte("lo")) {
			t.Fatalf("%s: clamped extract = %q", name, got)
		}
		if got := x.Extract(0, 10, 5); got != nil {
			t.Fatalf("%s: out-of-range extract = %q", name, got)
		}
		if got := x.Extract(0, 2, 0); got != nil {
			t.Fatalf("%s: zero-length extract = %q", name, got)
		}
	}
}

func TestSeparatorInDocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build([]Doc{{ID: 1, Data: []byte{1, 0, 2}}}, Options{})
}

func TestQuickFMvsSA(t *testing.T) {
	// Property: FM-index and suffix-array index agree on every query.
	f := func(seed int64, sigmaRaw uint8) bool {
		sigma := int(sigmaRaw)%30 + 1
		rng := rand.New(rand.NewSource(seed))
		docs := randomDocs(rng, 1+rng.Intn(8), 80, sigma)
		fm := Build(docs, Options{SampleRate: 3})
		sx := BuildSA(docs)
		for trial := 0; trial < 10; trial++ {
			pattern := make([]byte, 1+rng.Intn(4))
			for j := range pattern {
				pattern[j] = byte(1 + rng.Intn(sigma))
			}
			if !pairsEqual(findAll(fm, pattern), findAll(sx, pattern)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleRateSpaceTradeoff(t *testing.T) {
	// Larger s must shrink the sample arrays (Table 1 space column).
	rng := rand.New(rand.NewSource(4))
	docs := randomDocs(rng, 5, 4000, 26)
	s4 := Build(docs, Options{SampleRate: 4})
	s64 := Build(docs, Options{SampleRate: 64})
	if s64.SizeBits() >= s4.SizeBits() {
		t.Fatalf("s=64 index (%d bits) not smaller than s=4 (%d bits)",
			s64.SizeBits(), s4.SizeBits())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkFMRange(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	docs := randomDocs(rng, 50, 4000, 26)
	x := Build(docs, Options{SampleRate: 16})
	pats := make([][]byte, 64)
	for i := range pats {
		d := rng.Intn(len(docs))
		off := rng.Intn(len(docs[d].Data) - 8)
		pats[i] = docs[d].Data[off : off+8]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Range(pats[i&63])
	}
}

func BenchmarkFMLocate(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	docs := randomDocs(rng, 50, 4000, 26)
	x := Build(docs, Options{SampleRate: 16})
	rows := make([]int, 1024)
	for i := range rows {
		rows[i] = rng.Intn(x.SALen())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Locate(rows[i&1023])
	}
}
