package fmindex

import (
	"dyncoll/internal/bitvec"
	"dyncoll/internal/snap"
	"dyncoll/internal/wavelet"
)

// Mapped (v2) forms of the three built-in indexes. The v1 codec in
// marshal.go decodes element by element into heap; these lay out every
// heavy array — BWT levels, rank directories, sample tables, Ψ deltas,
// suffix arrays — in the fixed-width MapView format so an open is a
// bounds-checked aliasing pass over mapped memory. Validation budget:
// everything alphabet- or directory-sized is checked exactly as in
// UnmarshalBinary; the per-element row scans (checkRows) over
// corpus-sized arrays are deliberately skipped, since they would make
// open O(n) again — full payload integrity is the opt-in CRC verify
// pass one layer up.

// EncodeMapped writes the FM-index in mapped form.
func (x *Index) EncodeMapped(e *snap.MapEncoder) {
	e.U64(uint64(x.n))
	e.U64(uint64(x.s))
	e.U64(uint64(x.symbols))
	c := make([]int64, len(x.c))
	for i, v := range x.c {
		c[i] = int64(v)
	}
	e.Int64s(c)
	x.bwt.EncodeMapped(e)
	x.marked.EncodeMapped(e)
	e.Int32s(x.saSamp)
	e.Int32s(x.isaSamp)
	e.Int32s(x.sepRows)
	e.Int32s(x.sepTargets)
	e.Int32s(x.docStarts)
	e.Words(x.docIDs)
}

// OpenMappedIndex reconstructs an FM-index over a mapped payload.
func OpenMappedIndex(mv *snap.MapView) (*Index, error) {
	nx := &Index{}
	nx.n = mv.Int()
	nx.s = mv.Int()
	nx.symbols = mv.Int()
	c := mv.Int64s()
	bwt := wavelet.ViewMapped(mv)
	marked := bitvec.ViewMapped(mv)
	nx.saSamp = mv.Int32s()
	nx.isaSamp = mv.Int32s()
	nx.sepRows = mv.Int32s()
	nx.sepTargets = mv.Int32s()
	nx.docStarts = mv.Int32s()
	nx.docIDs = mv.Words()
	if err := mv.Err(); err != nil {
		return nil, err
	}
	nx.bwt, nx.marked = bwt, marked
	if len(c) != len(nx.c) {
		mv.Fail("fm: C array has %d entries", len(c))
		return nil, mv.Err()
	}
	prev := int64(0)
	for b, v := range c {
		if v < prev || v > int64(nx.n) {
			mv.Fail("fm: C array not monotone at symbol %d", b)
			return nil, mv.Err()
		}
		prev = v
		nx.c[b] = int(v)
	}
	switch {
	case nx.s < 1:
		mv.Fail("fm: sample rate %d", nx.s)
	case nx.c[256] != nx.n:
		mv.Fail("fm: C[256] = %d, want %d", nx.c[256], nx.n)
	case bwt.Len() != nx.n || marked.Len() != nx.n:
		mv.Fail("fm: BWT %d / marks %d rows for n=%d", bwt.Len(), marked.Len(), nx.n)
	case len(nx.saSamp) != marked.Ones():
		mv.Fail("fm: %d SA samples for %d marked rows", len(nx.saSamp), marked.Ones())
	case nx.n > 0 && len(nx.isaSamp) != (nx.n-1)/nx.s+2:
		mv.Fail("fm: %d ISA samples, want %d", len(nx.isaSamp), (nx.n-1)/nx.s+2)
	case len(nx.sepRows) != len(nx.sepTargets):
		mv.Fail("fm: %d separator rows for %d targets", len(nx.sepRows), len(nx.sepTargets))
	case bwt.Count(uint32(Sep)) != len(nx.sepRows):
		mv.Fail("fm: %d separator rows listed, BWT holds %d", len(nx.sepRows), bwt.Count(uint32(Sep)))
	case nx.n > 0 && marked.Ones() == 0:
		mv.Fail("fm: non-empty index with no SA samples")
	}
	if mv.Err() == nil {
		for i := 1; i < len(nx.sepRows); i++ {
			if nx.sepRows[i] <= nx.sepRows[i-1] {
				mv.Fail("fm: separator rows not increasing at %d", i)
				break
			}
		}
	}
	if mv.Err() == nil {
		checkDocTable(mv, nx.n, nx.docStarts, nx.docIDs, nx.symbols)
	}
	if mv.Remaining() != 0 {
		mv.Fail("fm: %d trailing bytes in mapped payload", mv.Remaining())
	}
	if err := mv.Err(); err != nil {
		return nil, err
	}
	nx.buildSymTable()
	return nx, nil
}

// EncodeMapped writes the plain suffix-array index in mapped form.
func (x *SAIndex) EncodeMapped(e *snap.MapEncoder) {
	e.U64(uint64(x.symbols))
	e.Blob(x.text)
	e.Int32s(x.suff)
	e.Int32s(x.inv)
	e.Int32s(x.docStarts)
	e.Words(x.docIDs)
}

// OpenMappedSA reconstructs a plain suffix-array index over a mapped
// payload.
func OpenMappedSA(mv *snap.MapView) (*SAIndex, error) {
	nx := &SAIndex{}
	nx.symbols = mv.Int()
	nx.text = mv.Blob()
	nx.suff = mv.Int32s()
	nx.inv = mv.Int32s()
	nx.docStarts = mv.Int32s()
	nx.docIDs = mv.Words()
	if err := mv.Err(); err != nil {
		return nil, err
	}
	n := len(nx.text)
	if len(nx.suff) != n || len(nx.inv) != n {
		mv.Fail("sa: %d/%d suffix rows for %d text bytes", len(nx.suff), len(nx.inv), n)
	}
	if mv.Err() == nil {
		checkDocTable(mv, n, nx.docStarts, nx.docIDs, nx.symbols)
	}
	if mv.Remaining() != 0 {
		mv.Fail("sa: %d trailing bytes in mapped payload", mv.Remaining())
	}
	if err := mv.Err(); err != nil {
		return nil, err
	}
	return nx, nil
}

// EncodeMapped writes the compressed suffix array in mapped form.
func (x *CSA) EncodeMapped(e *snap.MapEncoder) {
	e.U64(uint64(x.n))
	e.U64(uint64(x.s))
	e.U64(uint64(x.symbols))
	c := make([]int32, len(x.c))
	copy(c, x.c[:])
	e.Int32s(c)
	e.Int32s(x.psiSamples)
	e.Blob(x.psiDeltas)
	e.Int32s(x.psiOffsets)
	e.Int32s(x.saSamp)
	x.saMarked.EncodeMapped(e)
	e.Int32s(x.isaSamp)
	e.Int32s(x.docStarts)
	e.Words(x.docIDs)
}

// OpenMappedCSA reconstructs a compressed suffix array over a mapped
// payload. The Ψ block directory (offsets into the delta stream) is
// validated in full — it is O(n/64) and an out-of-order offset would
// send the varint reader out of bounds — while the delta bytes and
// sample rows themselves are trusted like every other bulk payload.
func OpenMappedCSA(mv *snap.MapView) (*CSA, error) {
	nx := &CSA{}
	nx.n = mv.Int()
	nx.s = mv.Int()
	nx.symbols = mv.Int()
	c := mv.Int32s()
	nx.psiSamples = mv.Int32s()
	nx.psiDeltas = mv.Blob()
	nx.psiOffsets = mv.Int32s()
	nx.saSamp = mv.Int32s()
	saMarked := bitvec.ViewMapped(mv)
	nx.isaSamp = mv.Int32s()
	nx.docStarts = mv.Int32s()
	nx.docIDs = mv.Words()
	if err := mv.Err(); err != nil {
		return nil, err
	}
	nx.saMarked = saMarked
	if len(c) != len(nx.c) {
		mv.Fail("csa: C array has %d entries", len(c))
		return nil, mv.Err()
	}
	prev := int32(0)
	for b, v := range c {
		if v < prev || int(v) > nx.n {
			mv.Fail("csa: C array not monotone at symbol %d", b)
			return nil, mv.Err()
		}
		prev = v
		nx.c[b] = v
	}
	wantBlocks := 0
	if nx.n > 0 {
		wantBlocks = (nx.n-1)/psiBlock + 1
	}
	switch {
	case nx.s < 1:
		mv.Fail("csa: sample rate %d", nx.s)
	case saMarked.Len() != nx.n:
		mv.Fail("csa: %d marked rows for n=%d", saMarked.Len(), nx.n)
	case len(nx.psiSamples) != wantBlocks || len(nx.psiOffsets) != wantBlocks:
		mv.Fail("csa: %d/%d Ψ blocks, want %d", len(nx.psiSamples), len(nx.psiOffsets), wantBlocks)
	case len(nx.saSamp) != saMarked.Ones():
		mv.Fail("csa: %d SA samples for %d marked rows", len(nx.saSamp), saMarked.Ones())
	case nx.n > 0 && saMarked.Ones() == 0:
		mv.Fail("csa: non-empty index with no SA samples")
	case nx.n > 0 && len(nx.isaSamp) != (nx.n+nx.s-1)/nx.s:
		mv.Fail("csa: %d ISA samples, want %d", len(nx.isaSamp), (nx.n+nx.s-1)/nx.s)
	}
	if mv.Err() == nil {
		for i, off := range nx.psiOffsets {
			if int(off) < 0 || int(off) > len(nx.psiDeltas) || (i > 0 && off < nx.psiOffsets[i-1]) {
				mv.Fail("csa: Ψ block offset %d out of order", off)
				break
			}
		}
	}
	if mv.Err() == nil {
		checkDocTable(mv, nx.n, nx.docStarts, nx.docIDs, nx.symbols)
	}
	if mv.Remaining() != 0 {
		mv.Fail("csa: %d trailing bytes in mapped payload", mv.Remaining())
	}
	if err := mv.Err(); err != nil {
		return nil, err
	}
	nx.sym.build(nx.c, nx.n)
	return nx, nil
}
