// Package wal is a write-ahead log with group commit, plus the
// manifest that ties a checkpoint and the WAL tail into one recovery
// point.
//
// The log is a sequence of files wal-<seq> holding length-prefixed,
// CRC-protected records:
//
//	uint32 LE payload length | uint32 LE CRC32C(payload) | payload
//
// Appends go to the newest file; a checkpoint rotates to a fresh file
// so the manifest can name "replay from file seq S" and everything
// older becomes garbage. Commit acknowledges a record only once an
// fsync covering it has returned — with a configurable batching window
// so concurrent writers share fsyncs (group commit). Replay reads the
// files back in sequence order, stopping at the first invalid frame:
// in the newest file that is the torn tail of a crash mid-write and is
// truncated away; in an older file it is corruption (bytes after the
// break survive in later files, so the result would not be a prefix)
// and replay fails with a typed error.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dyncoll/internal/snap"
)

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader = 8 // length + CRC
	// MaxRecord bounds a single record's payload so a corrupt length
	// prefix cannot drive a multi-gigabyte allocation during replay.
	MaxRecord = 1 << 30
)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: closed")

// filePrefix is the WAL file name prefix; files are wal-<16-digit seq>.
const filePrefix = "wal-"

// fileName formats the WAL file name for a sequence number.
func fileName(seq uint64) string { return fmt.Sprintf("%s%016d", filePrefix, seq) }

// parseSeq extracts the sequence number from a WAL file name.
func parseSeq(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, filePrefix)
	if !ok || len(s) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listFiles returns the WAL file sequence numbers in dir, ascending.
func listFiles(fs FS, dir string) ([]uint64, error) {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// AppendFrame appends one framed record to buf and returns the
// extended slice. Exposed so tests and the fuzzer can build WAL bytes
// without a Log.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	return append(append(buf, hdr[:]...), payload...)
}

// readFrame parses the frame at data[off:]. ok=false means no valid
// frame starts there (truncation or corruption — indistinguishable
// from the reader's side).
func readFrame(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+frameHeader > len(data) {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n > MaxRecord || off+frameHeader+n > len(data) {
		return nil, 0, false
	}
	p := data[off+frameHeader : off+frameHeader+n]
	if crc32.Checksum(p, castagnoli) != sum {
		return nil, 0, false
	}
	return p, off + frameHeader + n, true
}

// Options configures a Log.
type Options struct {
	// SyncWindow is the group-commit batching window: a commit may be
	// delayed up to this long so concurrent writers share one fsync.
	// Zero syncs as soon as the syncer gets the request — still batching
	// whatever accumulated while the previous fsync was in flight.
	SyncWindow time.Duration
	// FS is the filesystem seam; nil means the real filesystem.
	FS FS
}

// Log is an append-only write-ahead log. Append and Commit are safe
// for concurrent use.
type Log struct {
	fs     FS
	dir    string
	window time.Duration

	mu     sync.Mutex
	cond   *sync.Cond // broadcast when synced or syncErr advances
	f      File
	seq    uint64 // sequence number of the current file
	lsn    uint64 // LSN of the last appended record
	synced uint64 // highest LSN covered by a completed fsync
	size   int64  // bytes written to the current file
	err    error  // latched write/sync failure; log is dead once set
	closed bool
	dirty  bool // records appended since the last sync request
	inSync bool // syncer is inside fsync (rotation must wait)

	kick chan struct{}
	quit chan struct{}
	idle sync.WaitGroup
}

// Open opens the log in dir for appending, continuing the newest
// existing WAL file or creating wal-<startSeq> if none exist. Replay
// must have run first (it truncates any torn tail). startSeq is the
// manifest's WAL start — used only when the directory has no WAL files
// yet.
func Open(dir string, startSeq uint64, opts Options) (*Log, error) {
	fsi := opts.FS
	if fsi == nil {
		fsi = OS
	}
	if err := fsi.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	seqs, err := listFiles(fsi, dir)
	if err != nil {
		return nil, err
	}
	seq := startSeq
	var size int64
	if len(seqs) > 0 {
		seq = seqs[len(seqs)-1]
		data, err := fsi.ReadFile(filepath.Join(dir, fileName(seq)))
		if err != nil {
			return nil, err
		}
		size = int64(len(data))
	}
	f, err := fsi.OpenFile(filepath.Join(dir, fileName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		// Make the file itself durable before anything is logged to it,
		// so a crash cannot lose the directory entry of a file whose
		// records were acknowledged.
		if err := fsi.SyncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	l := &Log{
		fs:     fsi,
		dir:    dir,
		window: opts.SyncWindow,
		f:      f,
		seq:    seq,
		size:   size,
		kick:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	l.idle.Add(1)
	go l.syncer()
	return l, nil
}

// Append writes one record and returns its LSN. The record is NOT
// durable until Commit(lsn) returns; callers that need ordering
// against other writers must serialize Append with their own state
// change (the durable facades hold their mutation lock across both).
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	frame := AppendFrame(make([]byte, 0, frameHeader+len(payload)), payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if _, err := l.f.Write(frame); err != nil {
		// A partial frame may be on disk; the log is unusable (replay
		// will stop at the torn frame, dropping anything after it).
		l.err = fmt.Errorf("wal: append: %w", err)
		l.cond.Broadcast()
		return 0, l.err
	}
	l.size += int64(len(frame))
	l.lsn++
	l.dirty = true
	return l.lsn, nil
}

// Commit blocks until every record up to and including lsn is durable
// (an fsync covering it has completed) and returns nil, or returns the
// log's latched failure. Only after Commit returns may the operation
// be acknowledged to a client.
func (l *Log) Commit(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.synced < lsn {
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		l.requestSync()
		l.cond.Wait()
	}
	return nil
}

// requestSync nudges the syncer; callers hold l.mu.
func (l *Log) requestSync() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// syncer is the group-commit loop: wait for a request, optionally
// sleep the batching window so concurrent commits pile up, then fsync
// once for everything appended so far.
func (l *Log) syncer() {
	defer l.idle.Done()
	for {
		select {
		case <-l.quit:
			return
		case <-l.kick:
		}
		if l.window > 0 {
			t := time.NewTimer(l.window)
			select {
			case <-l.quit:
				t.Stop()
				// Drain one last time so Close can flush.
			case <-t.C:
			}
		}
		l.syncPass()
		select {
		case <-l.quit:
			return
		default:
		}
	}
}

// syncPass fsyncs the current file and advances the durable horizon to
// the highest LSN that had been appended when the fsync started.
func (l *Log) syncPass() {
	l.mu.Lock()
	if l.err != nil || l.closed || !l.dirty {
		l.mu.Unlock()
		return
	}
	// Snapshot the horizon and file under the lock; appends to the same
	// file during the fsync are simply not covered by it. Rotate and
	// Close wait for inSync, so f stays valid (and stays l.f) for the
	// duration.
	target := l.lsn
	f := l.f
	l.dirty = false
	l.inSync = true
	l.mu.Unlock()

	err := f.Sync()

	l.mu.Lock()
	l.inSync = false
	if err != nil {
		if l.err == nil {
			l.err = fmt.Errorf("wal: fsync: %w", err)
		}
	} else if target > l.synced {
		l.synced = target
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Rotate syncs and closes the current WAL file and starts a fresh one
// with the next sequence number, returning the new file's sequence.
// Called by the checkpointer just before capturing state: everything
// checkpointed is in files < the returned seq, so the manifest's
// replay start can be exactly that seq. The caller must prevent
// concurrent Appends (the durable facades hold their mutation lock).
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	for l.inSync {
		l.cond.Wait() // don't close a file mid-fsync
	}
	// Make the old file's contents durable before abandoning it.
	if l.dirty {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: fsync: %w", err)
			l.cond.Broadcast()
			return 0, l.err
		}
		l.synced = l.lsn
		l.dirty = false
		l.cond.Broadcast()
	}
	newSeq := l.seq + 1
	f, err := l.fs.OpenFile(filepath.Join(l.dir, fileName(newSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return 0, err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return 0, err
	}
	l.f.Close()
	l.f = f
	l.seq = newSeq
	l.size = 0
	return newSeq, nil
}

// Seq returns the sequence number of the file currently appended to.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Size returns the byte size of the file currently appended to.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes pending records, stops the syncer and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for l.inSync {
		l.cond.Wait()
	}
	var err error
	if l.dirty && l.err == nil {
		if err = l.f.Sync(); err == nil {
			l.synced = l.lsn
			l.dirty = false
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if err == nil && l.err != nil {
		err = l.err
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	close(l.quit)
	l.idle.Wait()
	return err
}

// ReplayStats describes what a replay consumed.
type ReplayStats struct {
	// Files is the number of WAL files read.
	Files int
	// Records is the number of valid records applied.
	Records int
	// Bytes is the total valid bytes consumed.
	Bytes int64
	// TornTail reports that the newest file ended in an invalid frame
	// (the torn write of a crash) that was truncated away.
	TornTail bool
}

// Replay reads every WAL file with sequence ≥ startSeq in ascending
// order, calling apply for each valid record. An invalid frame in the
// newest file is a torn tail: the file is truncated to its valid
// prefix and replay succeeds. An invalid frame in an older file — or a
// gap in the sequence numbers — would make the replayed history a
// non-prefix and fails with an error matching snap.ErrBadSnapshot.
// An apply error aborts the replay unchanged.
func Replay(fs FS, dir string, startSeq uint64, apply func(payload []byte) error) (ReplayStats, error) {
	var st ReplayStats
	seqs, err := listFiles(fs, dir)
	if err != nil {
		return st, err
	}
	i := sort.Search(len(seqs), func(i int) bool { return seqs[i] >= startSeq })
	seqs = seqs[i:]
	if len(seqs) > 0 && seqs[0] != startSeq {
		return st, snap.Corruptf("wal: first file is seq %d, manifest wants %d", seqs[0], startSeq)
	}
	for i, seq := range seqs {
		if seq != seqs[0]+uint64(i) {
			return st, snap.Corruptf("wal: file sequence gap before seq %d", seq)
		}
		path := filepath.Join(dir, fileName(seq))
		data, err := fs.ReadFile(path)
		if err != nil {
			return st, err
		}
		st.Files++
		off := 0
		for off < len(data) {
			payload, next, ok := readFrame(data, off)
			if !ok {
				if i != len(seqs)-1 {
					return st, snap.Corruptf("wal: invalid frame at byte %d of %s (not the newest file)", off, fileName(seq))
				}
				if err := fs.Truncate(path, int64(off)); err != nil {
					return st, err
				}
				st.TornTail = true
				return st, nil
			}
			if err := apply(payload); err != nil {
				return st, err
			}
			st.Records++
			st.Bytes += int64(next - off)
			off = next
		}
	}
	return st, nil
}

// RemoveBelow deletes WAL files with sequence < keepSeq — garbage once
// a manifest naming keepSeq as its replay start is durable.
func RemoveBelow(fs FS, dir string, keepSeq uint64) error {
	seqs, err := listFiles(fs, dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq >= keepSeq {
			break
		}
		if err := fs.Remove(filepath.Join(dir, fileName(seq))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}
