package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dyncoll/internal/snap"
)

// collect replays the directory and returns the payloads as strings.
func collect(t *testing.T, fs FS, dir string, start uint64) ([]string, ReplayStats) {
	t.Helper()
	var got []string
	st, err := Replay(fs, dir, start, func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, st
}

func TestAppendCommitReplay(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("d", 1, Options{FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := []string{"alpha", "beta", "gamma", ""}
	for _, s := range want {
		lsn, err := l.Append([]byte(s))
		if err != nil {
			t.Fatalf("Append(%q): %v", s, err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, st := collect(t, fs, "d", 1)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if st.Files != 1 || st.Records != len(want) || st.TornTail {
		t.Errorf("stats = %+v", st)
	}
}

func TestReopenContinuesNewestFile(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("d", 7, Options{FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open("d", 7, Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l.Seq() != 7 {
		t.Fatalf("Seq = %d, want 7", l.Seq())
	}
	lsn, err := l.Append([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, _ := collect(t, fs, "d", 7)
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("replayed %q", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	fs := NewMemFS()
	path := filepath.Join("d", fileName(1))
	data := AppendFrame(nil, []byte("kept"))
	data = AppendFrame(data, []byte("also kept"))
	whole := len(data)
	data = AppendFrame(data, []byte("torn away"))
	fs.SetFile(path, data[:len(data)-3]) // crash mid-write of the last frame
	got, st := collect(t, fs, "d", 1)
	if len(got) != 2 || got[0] != "kept" || got[1] != "also kept" {
		t.Fatalf("replayed %q", got)
	}
	if !st.TornTail {
		t.Error("TornTail not reported")
	}
	if b, _ := fs.ReadFile(path); len(b) != whole {
		t.Errorf("file truncated to %d bytes, want %d", len(b), whole)
	}
	// A second replay is clean: the torn bytes are gone.
	if _, st := collect(t, fs, "d", 1); st.TornTail {
		t.Error("TornTail reported after truncation")
	}
}

func TestCorruptionInOlderFileFails(t *testing.T) {
	fs := NewMemFS()
	bad := AppendFrame(nil, []byte("ok"))
	bad[len(bad)-1] ^= 0xff // flip a payload byte: CRC mismatch
	fs.SetFile(filepath.Join("d", fileName(1)), bad)
	fs.SetFile(filepath.Join("d", fileName(2)), AppendFrame(nil, []byte("later")))
	_, err := Replay(fs, "d", 1, func([]byte) error { return nil })
	if !errors.Is(err, snap.ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot", err)
	}
}

func TestSequenceGapFails(t *testing.T) {
	fs := NewMemFS()
	fs.SetFile(filepath.Join("d", fileName(1)), AppendFrame(nil, []byte("a")))
	fs.SetFile(filepath.Join("d", fileName(3)), AppendFrame(nil, []byte("b")))
	_, err := Replay(fs, "d", 1, func([]byte) error { return nil })
	if !errors.Is(err, snap.ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot", err)
	}
	// Same when the manifest's start file itself is missing.
	_, err = Replay(fs, "d", 2, func([]byte) error { return nil })
	if !errors.Is(err, snap.ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot", err)
	}
}

func TestReplayApplyErrorAborts(t *testing.T) {
	fs := NewMemFS()
	data := AppendFrame(nil, []byte("a"))
	data = AppendFrame(data, []byte("b"))
	fs.SetFile(filepath.Join("d", fileName(1)), data)
	boom := errors.New("boom")
	n := 0
	_, err := Replay(fs, "d", 1, func([]byte) error {
		n++
		return boom
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("err = %v after %d applies", err, n)
	}
}

// TestCommitAcksOnlyAfterDurable is the core group-commit semantics
// test: Commit must not return before an fsync covering the record has
// completed, and a failed fsync must surface as the commit error.
func TestCommitAcksOnlyAfterDurable(t *testing.T) {
	fs := NewMemFS()
	gate := make(chan struct{})
	entered := make(chan string, 16)
	fs.OnSync = func(name string) error {
		entered <- name
		<-gate
		return nil
	}
	l, err := Open("d", 1, Options{FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	lsn, err := l.Append([]byte("must be durable first"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.Commit(lsn) }()
	<-entered // the syncer is now blocked inside fsync
	select {
	case err := <-done:
		t.Fatalf("Commit returned %v before fsync completed", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Commit after fsync: %v", err)
	}
	fs.OnSync = nil
	l.Close()
}

func TestFsyncFailureFailsCommitAndLatches(t *testing.T) {
	fs := NewMemFS()
	boom := errors.New("disk gone")
	fs.OnSync = func(string) error { return boom }
	l, err := Open("d", 1, Options{FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	lsn, err := l.Append([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); !errors.Is(err, boom) {
		t.Fatalf("Commit = %v, want wrapped %v", err, boom)
	}
	// The log is dead: later appends fail with the latched error.
	if _, err := l.Append([]byte("y")); !errors.Is(err, boom) {
		t.Fatalf("Append after failed fsync = %v, want wrapped %v", err, boom)
	}
	fs.OnSync = nil
	l.Close()
}

// TestGroupCommitBatchesFsyncs proves the window actually shares
// fsyncs: many concurrent committers, far fewer syncs.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	fs := NewMemFS()
	var syncs atomic.Int64
	fs.OnSync = func(string) error {
		syncs.Add(1)
		return nil
	}
	l, err := Open("d", 1, Options{FS: fs, SyncWindow: 30 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append([]byte(fmt.Sprintf("record %d", i)))
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = l.Commit(lsn)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	batched := syncs.Load()
	fs.OnSync = nil
	l.Close()
	if batched >= writers {
		t.Errorf("%d fsyncs for %d concurrent commits — no batching", batched, writers)
	}
	got, _ := collect(t, fs, "d", 1)
	if len(got) != writers {
		t.Fatalf("replayed %d records, want %d", len(got), writers)
	}
}

func TestRotateAndRemoveBelow(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("d", 1, Options{FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	lsn, _ := l.Append([]byte("old"))
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	newSeq, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if newSeq != 2 || l.Seq() != 2 || l.Size() != 0 {
		t.Fatalf("after rotate: newSeq=%d Seq=%d Size=%d", newSeq, l.Seq(), l.Size())
	}
	lsn, _ = l.Append([]byte("new"))
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	// Replaying from the rotation point sees only the tail.
	got, _ := collect(t, fs, "d", newSeq)
	if len(got) != 1 || got[0] != "new" {
		t.Fatalf("tail replay = %q", got)
	}
	if err := RemoveBelow(fs, "d", newSeq); err != nil {
		t.Fatalf("RemoveBelow: %v", err)
	}
	if _, err := fs.ReadFile(filepath.Join("d", fileName(1))); err == nil {
		t.Error("rotated-away file still present after RemoveBelow")
	}
	l.Close()
	got, _ = collect(t, fs, "d", newSeq)
	if len(got) != 1 || got[0] != "new" {
		t.Fatalf("replay after GC = %q", got)
	}
}

func TestAppendAfterClose(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("d", 1, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	fs := NewMemFS()
	want := Manifest{
		WALStart:      42,
		Checkpoint:    "ckpt-00000007",
		CheckpointCRC: 0xdeadbeef,
		Segments:      []string{"seg-00000007-0000-3", "seg-00000002-0001-9"},
	}
	if err := WriteManifest(fs, "d", want); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	got, ok, err := ReadManifest(fs, "d")
	if err != nil || !ok {
		t.Fatalf("ReadManifest: ok=%v err=%v", ok, err)
	}
	if got.WALStart != want.WALStart || got.Checkpoint != want.Checkpoint ||
		got.CheckpointCRC != want.CheckpointCRC || len(got.Segments) != len(want.Segments) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want.Segments {
		if got.Segments[i] != want.Segments[i] {
			t.Errorf("segment %d = %q, want %q", i, got.Segments[i], want.Segments[i])
		}
	}
	// No tmp file left behind.
	if _, err := fs.ReadFile(filepath.Join("d", ManifestName+".tmp")); err == nil {
		t.Error("manifest tmp file survived the rename")
	}
}

func TestManifestAbsentAndCorrupt(t *testing.T) {
	fs := NewMemFS()
	if _, ok, err := ReadManifest(fs, "d"); ok || err != nil {
		t.Fatalf("fresh dir: ok=%v err=%v", ok, err)
	}
	if err := WriteManifest(fs, "d", Manifest{WALStart: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("d", ManifestName)
	data, _ := fs.ReadFile(path)
	for flip := 0; flip < len(data); flip += 3 {
		bad := append([]byte(nil), data...)
		bad[flip] ^= 0x40
		fs.SetFile(path, bad)
		if _, ok, err := ReadManifest(fs, "d"); err == nil && ok {
			// A flip in the CRC'd region must be caught.
			t.Fatalf("byte flip at %d accepted", flip)
		} else if err != nil && !errors.Is(err, snap.ErrBadSnapshot) {
			t.Fatalf("byte flip at %d: untyped error %v", flip, err)
		}
	}
	// Truncations must be caught too.
	for cut := 0; cut < len(data); cut += 5 {
		fs.SetFile(path, data[:cut])
		if _, ok, err := ReadManifest(fs, "d"); err == nil && ok {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func BenchmarkWALAppend(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			fs := NewMemFS()
			l, err := Open("d", 1, Options{FS: fs})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, size)
			b.SetBytes(int64(frameHeader + size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lsn, err := l.Append(payload)
				if err != nil {
					b.Fatal(err)
				}
				if err := l.Commit(lsn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWALAppendGrouped(b *testing.B) {
	fs := NewMemFS()
	l, err := Open("d", 1, Options{FS: fs, SyncWindow: 100 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 256)
	b.SetBytes(int64(frameHeader + len(payload)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			lsn, err := l.Append(payload)
			if err != nil {
				b.Fatal(err)
			}
			if err := l.Commit(lsn); err != nil {
				b.Fatal(err)
			}
		}
	})
}
