package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"

	"dyncoll/internal/snap"
)

// The manifest is the single source of truth for "what is the current
// recovery point": which checkpoint file (if any) to load and which
// WAL file to start replaying from. It is written with the atomic
// tmp+rename+dir-fsync dance, so recovery always sees either the old
// manifest or the complete new one — the instant of the rename is the
// instant a checkpoint becomes the recovery point, and until then the
// old checkpoint and full WAL history are still on disk.

// ManifestName is the manifest's file name inside a durable directory.
const ManifestName = "MANIFEST"

// manifestMagic guards against feeding some other file to the decoder.
var manifestMagic = [4]byte{'d', 'w', 'm', 'f'}

const manifestVersion = 1

// Manifest names one recovery point.
type Manifest struct {
	// WALStart is the sequence number of the first WAL file to replay.
	WALStart uint64
	// Checkpoint is the checkpoint spine file's name within the same
	// directory; empty means no checkpoint (replay the WAL from the
	// beginning into an empty structure).
	Checkpoint string
	// CheckpointCRC is the CRC32C of the checkpoint spine file, so a
	// manifest can never pair with a mismatched or corrupted spine.
	CheckpointCRC uint32
	// Segments names every checkpoint segment file referenced by the
	// spine, so recovery and garbage collection know the full file set
	// without parsing the spine first.
	Segments []string
}

// encode serializes the manifest with a trailing CRC over everything
// before it.
func (m Manifest) encode() []byte {
	e := &snap.Encoder{}
	e.Raw(manifestMagic[:])
	e.Byte(manifestVersion)
	e.Uvarint(m.WALStart)
	e.String(m.Checkpoint)
	e.Uvarint(uint64(m.CheckpointCRC))
	e.Uvarint(uint64(len(m.Segments)))
	for _, s := range m.Segments {
		e.String(s)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(e.Bytes(), castagnoli))
	e.Raw(sum[:])
	return e.Bytes()
}

// decodeManifest parses and validates manifest bytes.
func decodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if len(data) < 4 {
		return m, snap.Corruptf("manifest truncated")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return m, snap.Corruptf("manifest checksum mismatch")
	}
	dec := snap.NewDecoder(body)
	magic := dec.Raw(4)
	if err := dec.Err(); err != nil {
		return m, err
	}
	if string(magic) != string(manifestMagic[:]) {
		return m, snap.Corruptf("manifest magic %q", magic)
	}
	if v := dec.Byte(); v != manifestVersion {
		return m, snap.Corruptf("unsupported manifest version %d", v)
	}
	m.WALStart = dec.Uvarint()
	m.Checkpoint = dec.String()
	crcv := dec.Uvarint()
	if crcv > 0xffffffff {
		return m, snap.Corruptf("manifest checkpoint CRC overflows uint32")
	}
	m.CheckpointCRC = uint32(crcv)
	n := dec.Count(1)
	if err := dec.Err(); err != nil {
		return m, err
	}
	for i := 0; i < n; i++ {
		m.Segments = append(m.Segments, dec.String())
	}
	if err := dec.Err(); err != nil {
		return m, err
	}
	if dec.Remaining() != 0 {
		return m, snap.Corruptf("%d trailing manifest bytes", dec.Remaining())
	}
	return m, nil
}

// WriteManifest atomically replaces dir's manifest.
func WriteManifest(fs FS, dir string, m Manifest) error {
	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(m.encode()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// ReadManifest loads dir's manifest. ok=false (with nil error) means
// no manifest exists — a fresh directory.
func ReadManifest(fs FS, dir string) (m Manifest, ok bool, err error) {
	data, err := fs.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Manifest{}, false, nil
		}
		return Manifest{}, false, err
	}
	m, err = decodeManifest(data)
	if err != nil {
		return Manifest{}, false, err
	}
	return m, true, nil
}
