package wal

import (
	"errors"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"dyncoll/internal/mmap"
)

// The filesystem seam. Every byte the durability layer persists goes
// through this interface, for two reasons: tests can fault-inject
// fsync (block it, fail it) to prove commit-before-ack ordering, and
// the replay fuzzer can corrupt files in memory at full speed instead
// of hitting disk thousands of times per second.

// File is the writable-file subset the WAL needs.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations of the durability layer.
// Implementations must be safe for concurrent use.
type FS interface {
	// OpenFile opens a file for writing with os.OpenFile semantics for
	// the O_CREATE, O_APPEND, O_TRUNC and O_EXCL flags.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory so renamed/created entries inside it
	// are durable; filesystems that cannot sync a directory handle
	// degrade to a no-op rather than failing.
	SyncDir(name string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile reads whole checkpoint and WAL segment files during
// restore; the sequential-access hint widens kernel readahead on that
// cold path (no-op off Linux).
func (osFS) ReadFile(name string) ([]byte, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	mmap.ReadAhead(f)
	return io.ReadAll(f)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) && !errors.Is(err, syscall.EBADF) {
		return err
	}
	return nil
}

// MemFS is an in-memory FS for tests: a flat map of paths to byte
// slices with directories existing implicitly. The OnSync hook runs
// inside every File.Sync call (while no MemFS lock is held), so a test
// can block or fail the fsync of a chosen file and observe what the
// WAL acknowledges in the meantime.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	// OnSync, when non-nil, is called with the file's path on every
	// Sync; returning an error fails the sync.
	OnSync func(name string) error
}

type memFile struct {
	data []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memFile)} }

// Snapshot returns a copy of every file's current bytes — "what would
// be on disk now" for crash-simulation tests.
func (m *MemFS) Snapshot() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.files))
	for p, f := range m.files {
		out[p] = append([]byte(nil), f.data...)
	}
	return out
}

// Restore replaces the filesystem's contents with a Snapshot.
func (m *MemFS) Restore(files map[string][]byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files = make(map[string]*memFile, len(files))
	for p, b := range files {
		m.files[p] = &memFile{data: append([]byte(nil), b...)}
	}
}

// SetFile overwrites (or creates) a file's bytes directly — the
// fuzzer's corruption primitive.
func (m *MemFS) SetFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{data: append([]byte(nil), data...)}
}

func (m *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	case ok && flag&os.O_EXCL != 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrExist}
	case !ok:
		f = &memFile{}
		m.files[name] = f
	case flag&os.O_TRUNC != 0:
		f.data = nil
	}
	return &memHandle{fs: m, name: name, f: f, append: flag&os.O_APPEND != 0}, nil
}

type memHandle struct {
	fs     *MemFS
	name   string
	f      *memFile
	append bool
	off    int
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	if h.append {
		h.f.data = append(h.f.data, p...)
		return len(p), nil
	}
	for len(h.f.data) < h.off {
		h.f.data = append(h.f.data, 0)
	}
	h.f.data = append(h.f.data[:h.off], p...)
	h.off += len(p)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	if hook := h.fs.OnSync; hook != nil {
		if err := hook(h.name); err != nil {
			return err
		}
	}
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &os.PathError{Op: "read", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	m.files[newpath] = f
	delete(m.files, oldpath)
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) ReadDir(name string) ([]os.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []os.DirEntry
	for p := range m.files {
		if filepath.Dir(p) == filepath.Clean(name) {
			out = append(out, memDirEntry{filepath.Base(p)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

func (m *MemFS) MkdirAll(path string, perm os.FileMode) error { return nil }

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if size < 0 || size > int64(len(f.data)) {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrInvalid}
	}
	f.data = f.data[:size]
	return nil
}

func (m *MemFS) SyncDir(name string) error { return nil }

type memDirEntry struct{ name string }

func (e memDirEntry) Name() string                 { return e.name }
func (e memDirEntry) IsDir() bool                  { return false }
func (e memDirEntry) Type() iofs.FileMode          { return 0 }
func (e memDirEntry) Info() (iofs.FileInfo, error) { return memFileInfo{e.name}, nil }

type memFileInfo struct{ name string }

func (i memFileInfo) Name() string        { return i.name }
func (i memFileInfo) Size() int64         { return 0 }
func (i memFileInfo) Mode() iofs.FileMode { return 0o644 }
func (i memFileInfo) ModTime() time.Time  { return time.Time{} }
func (i memFileInfo) IsDir() bool         { return false }
func (i memFileInfo) Sys() any            { return nil }
