package wavelet

// Tests pinning the flat level-order layout to the behaviour and wire
// format of the original pointer-node implementation.
//
// testdata/pointer_layout.bin was encoded by the pointer implementation
// (before the flat rewrite) over the deterministic sequences below; the
// flat tree must encode the same sequences byte-identically and decode
// the fixture into an equivalent tree. This is the marshal half of the
// layout-change contract: snapshots written before the rewrite keep
// loading, and snapshots written after it load in old builds.

import (
	"bytes"
	"os"
	"testing"

	"dyncoll/internal/snap"
)

// fixtureRNG is the deterministic generator the fixture was built with
// (splitmix64).
type fixtureRNG uint64

func (r *fixtureRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fixtureSequences regenerates the sequences the committed fixture
// encodes, in fixture order.
func fixtureSequences() ([][]uint32, []int, []func([]uint32) *Tree) {
	rng := fixtureRNG(42)
	bs := make([]uint32, 4096)
	for i := range bs {
		v := rng.next() % 256
		bs[i] = uint32(byte(v * v / 256)) // skew toward low symbols
	}
	syms := make([]uint32, 2000)
	for i := range syms {
		syms[i] = uint32(rng.next() % 37)
	}
	sparse := make([]uint32, 1500)
	for i := range sparse {
		sparse[i] = uint32(rng.next()%25) * 2
	}
	seqs := [][]uint32{bs, syms, sparse, nil, {3, 3, 3}}
	sigmas := []int{256, 37, 50, 256, 4}
	builders := []func([]uint32) *Tree{
		func(s []uint32) *Tree { return NewHuffmanBytes(symsToBytes(s), 256) },
		func(s []uint32) *Tree { return NewBalanced(s, 37) },
		func(s []uint32) *Tree { return NewHuffman(s, 50) },
		func(s []uint32) *Tree { return NewHuffmanBytes(symsToBytes(s), 256) },
		func(s []uint32) *Tree { return NewBalanced(s, 4) },
	}
	return seqs, sigmas, builders
}

func symsToBytes(s []uint32) []byte {
	out := make([]byte, len(s))
	for i, v := range s {
		out[i] = byte(v)
	}
	return out
}

func TestPointerLayoutFixtureByteIdentical(t *testing.T) {
	want, err := os.ReadFile("testdata/pointer_layout.bin")
	if err != nil {
		t.Fatal(err)
	}
	seqs, _, builders := fixtureSequences()
	e := snap.Encoder{}
	for i, seq := range seqs {
		builders[i](seq).EncodeTo(&e)
	}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("flat-layout encoding differs from pointer-era fixture: got %d bytes, fixture %d bytes", e.Len(), len(want))
	}
}

func TestPointerLayoutFixtureDecodes(t *testing.T) {
	raw, err := os.ReadFile("testdata/pointer_layout.bin")
	if err != nil {
		t.Fatal(err)
	}
	seqs, sigmas, _ := fixtureSequences()
	d := snap.NewDecoder(raw)
	for i, seq := range seqs {
		tr := DecodeFrom(d)
		if err := d.Err(); err != nil {
			t.Fatalf("fixture tree %d: %v", i, err)
		}
		if tr.Len() != len(seq) || tr.Sigma() != sigmas[i] {
			t.Fatalf("fixture tree %d: n=%d sigma=%d, want %d/%d", i, tr.Len(), tr.Sigma(), len(seq), sigmas[i])
		}
		checkAgainstSequence(t, tr, seq, sigmas[i])
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d trailing bytes after fixture trees", d.Remaining())
	}
}

// checkAgainstSequence verifies every query against direct computation
// over the raw sequence.
func checkAgainstSequence(t *testing.T, tr *Tree, seq []uint32, sigma int) {
	t.Helper()
	counts := make([]int, sigma)
	for i, c := range seq {
		if got := tr.Access(i); got != c {
			t.Fatalf("Access(%d) = %d, want %d", i, got, c)
		}
		counts[c]++
	}
	rng := fixtureRNG(7)
	for trial := 0; trial < 200; trial++ {
		c := uint32(rng.next() % uint64(sigma))
		i := int(rng.next() % uint64(len(seq)+1))
		j := i + int(rng.next()%uint64(len(seq)+1-i))
		wantI, wantJ := 0, 0
		for p := 0; p < j; p++ {
			if seq[p] == c {
				if p < i {
					wantI++
				}
				wantJ++
			}
		}
		if got := tr.Rank(c, i); got != wantI {
			t.Fatalf("Rank(%d, %d) = %d, want %d", c, i, got, wantI)
		}
		gi, gj := tr.RankPair(c, i, j)
		if gi != wantI || gj != wantJ {
			t.Fatalf("RankPair(%d, %d, %d) = (%d, %d), want (%d, %d)", c, i, j, gi, gj, wantI, wantJ)
		}
	}
	for c := 0; c < sigma; c++ {
		if got := tr.Count(uint32(c)); got != counts[c] {
			t.Fatalf("Count(%d) = %d, want %d", c, got, counts[c])
		}
		if counts[c] > 0 {
			k := counts[c]/2 + 1
			pos := tr.Select(uint32(c), k)
			seen := 0
			want := -1
			for p, s := range seq {
				if s == uint32(c) {
					seen++
					if seen == k {
						want = p
						break
					}
				}
			}
			if pos != want {
				t.Fatalf("Select(%d, %d) = %d, want %d", c, k, pos, want)
			}
		}
		if got := tr.Select(uint32(c), counts[c]+1); got != -1 {
			t.Fatalf("Select(%d, %d) = %d, want -1", c, counts[c]+1, got)
		}
	}
}

// TestFlatLayoutRandomized drives randomized Access/Rank/RankPair/
// Select against direct computation on freshly built trees of both
// shapes and assorted alphabets — the behavioural half of the layout
// equivalence contract.
func TestFlatLayoutRandomized(t *testing.T) {
	rng := fixtureRNG(99)
	for trial := 0; trial < 20; trial++ {
		sigma := 2 + int(rng.next()%300)
		n := int(rng.next() % 3000)
		seq := make([]uint32, n)
		for i := range seq {
			// Skewed so Huffman shapes are non-trivial.
			seq[i] = uint32(rng.next()%uint64(sigma)) * uint32(rng.next()%uint64(sigma)) / uint32(sigma)
		}
		var tr *Tree
		if trial%2 == 0 {
			tr = NewHuffman(seq, sigma)
		} else {
			tr = NewBalanced(seq, sigma)
		}
		checkAgainstSequence(t, tr, seq, sigma)

		// Marshal round-trip through the flat encoder/decoder.
		e := snap.Encoder{}
		tr.EncodeTo(&e)
		rt := DecodeFrom(snap.NewDecoder(e.Bytes()))
		if rt == nil {
			t.Fatal("round-trip decode failed")
		}
		checkAgainstSequence(t, rt, seq, sigma)
	}
}
