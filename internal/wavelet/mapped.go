package wavelet

import (
	"dyncoll/internal/bitvec"
	"dyncoll/internal/huffman"
	"dyncoll/internal/snap"
)

// Mapped form. The level bit runs (the O(n log σ) bulk of the tree)
// are stored as mapped bitvectors and aliased in place at open; the
// node table and code book are alphabet-sized (≤ 2σ−1 nodes), so they
// are copied to heap — O(σ) work keeps open independent of the corpus
// while avoiding unsafe struct aliasing for the 7-field node records.

// EncodeMapped writes the tree in mapped form.
func (t *Tree) EncodeMapped(e *snap.MapEncoder) {
	e.U64(uint64(t.sigma))
	e.U64(uint64(t.n))
	lens := make([]int32, t.sigma)
	bits := make([]uint64, t.sigma)
	for i, c := range t.codes {
		lens[i] = int32(c.Len)
		bits[i] = c.Bits
	}
	e.Int32s(lens)
	e.Words(bits)
	flat := make([]int32, 0, 7*len(t.nodes))
	for _, nd := range t.nodes {
		flat = append(flat, nd.off, nd.onesBefore, nd.count, nd.zero, nd.one, nd.leaf, nd.depth)
	}
	e.Int32s(flat)
	e.U64(uint64(len(t.levels)))
	for _, lv := range t.levels {
		lv.EncodeMapped(e)
	}
}

// ViewMapped reconstructs a tree from mapped form. Structural checks
// are O(σ + n/512): code lengths, node-table shape (child and level
// references in range, bit runs within their level), and each level's
// rank directory via bitvec.ViewMapped.
func ViewMapped(mv *snap.MapView) *Tree {
	sigma := mv.Int()
	n := mv.Int()
	lens := mv.Int32s()
	bits := mv.Words()
	flat := mv.Int32s()
	nLevels := mv.Int()
	if mv.Err() != nil {
		return nil
	}
	if sigma < 1 {
		mv.Fail("wavelet: sigma %d < 1", sigma)
		return nil
	}
	if len(lens) != sigma || len(bits) != sigma {
		mv.Fail("wavelet: code book sized %d/%d for sigma %d", len(lens), len(bits), sigma)
		return nil
	}
	codes := make([]huffman.Code, sigma)
	for i := range codes {
		if lens[i] < 0 || lens[i] > 64 {
			mv.Fail("wavelet: code length %d for symbol %d", lens[i], i)
			return nil
		}
		codes[i] = huffman.Code{Symbol: i, Len: int(lens[i]), Bits: bits[i]}
	}
	if len(flat)%7 != 0 {
		mv.Fail("wavelet: node table of %d int32s not a multiple of 7", len(flat))
		return nil
	}
	nNodes := len(flat) / 7
	if nLevels > 64 || (n > 0) != (nNodes > 0) {
		// ≤64-bit codes bound the depth; a non-empty tree needs nodes
		// (a single leaf legitimately has no levels).
		mv.Fail("wavelet: %d nodes / %d levels for n=%d", nNodes, nLevels, n)
		return nil
	}
	levels := make([]*bitvec.Vector, nLevels)
	for d := range levels {
		if levels[d] = bitvec.ViewMapped(mv); levels[d] == nil {
			return nil
		}
	}
	nodes := make([]node, nNodes)
	for i := range nodes {
		r := flat[7*i : 7*i+7]
		nd := node{off: r[0], onesBefore: r[1], count: r[2], zero: r[3], one: r[4], leaf: r[5], depth: r[6]}
		if nd.count < 0 || nd.off < 0 || nd.leaf < -1 || int(nd.leaf) >= sigma {
			mv.Fail("wavelet: node %d malformed", i)
			return nil
		}
		if nd.zero < -1 || int(nd.zero) >= nNodes || nd.one < -1 || int(nd.one) >= nNodes {
			mv.Fail("wavelet: node %d child out of range", i)
			return nil
		}
		if nd.leaf < 0 { // internal: owns a bit run of its level
			if int(nd.depth) >= nLevels || nd.depth < 0 {
				mv.Fail("wavelet: node %d at depth %d of %d levels", i, nd.depth, nLevels)
				return nil
			}
			lv := levels[nd.depth]
			if int(nd.off)+int(nd.count) > lv.Len() || int(nd.onesBefore) > lv.Ones() {
				mv.Fail("wavelet: node %d run outside level %d", i, nd.depth)
				return nil
			}
		}
		nodes[i] = nd
	}
	if nNodes > 0 && n > 0 && int(nodes[0].count) != n {
		mv.Fail("wavelet: root covers %d of %d symbols", nodes[0].count, n)
		return nil
	}
	return &Tree{sigma: sigma, n: n, codes: codes, nodes: nodes, levels: levels}
}
