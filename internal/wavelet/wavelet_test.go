package wavelet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type refSeq []uint32

func (r refSeq) rank(c uint32, i int) int {
	n := 0
	for _, x := range r[:i] {
		if x == c {
			n++
		}
	}
	return n
}

func (r refSeq) sel(c uint32, k int) int {
	for i, x := range r {
		if x == c {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func randomSeq(rng *rand.Rand, n, sigma int) refSeq {
	s := make(refSeq, n)
	for i := range s {
		s[i] = uint32(rng.Intn(sigma))
	}
	return s
}

// builders under test share the same behaviour contract.
var builders = map[string]func(s []uint32, sigma int) *Tree{
	"balanced": NewBalanced,
	"huffman":  NewHuffman,
}

func TestEmptySequence(t *testing.T) {
	for name, mk := range builders {
		tr := mk(nil, 5)
		if tr.Len() != 0 {
			t.Fatalf("%s: Len=%d", name, tr.Len())
		}
		if tr.Rank(3, 0) != 0 {
			t.Fatalf("%s: Rank on empty", name)
		}
		if tr.Select(3, 1) != -1 {
			t.Fatalf("%s: Select on empty", name)
		}
	}
}

func TestSingleSymbolAlphabet(t *testing.T) {
	s := make([]uint32, 100)
	for name, mk := range builders {
		tr := mk(s, 1)
		if tr.Access(50) != 0 {
			t.Fatalf("%s: Access wrong", name)
		}
		if tr.Rank(0, 100) != 100 {
			t.Fatalf("%s: Rank=%d", name, tr.Rank(0, 100))
		}
		if tr.Select(0, 42) != 41 {
			t.Fatalf("%s: Select=%d", name, tr.Select(0, 42))
		}
	}
}

func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, mk := range builders {
		for _, sigma := range []int{2, 3, 4, 5, 17, 64, 256, 1000} {
			n := 2000
			ref := randomSeq(rng, n, sigma)
			tr := mk(ref, sigma)
			for i := 0; i < n; i += 1 + n/113 {
				if got := tr.Access(i); got != ref[i] {
					t.Fatalf("%s σ=%d: Access(%d)=%d, want %d", name, sigma, i, got, ref[i])
				}
			}
			for trial := 0; trial < 200; trial++ {
				c := uint32(rng.Intn(sigma))
				i := rng.Intn(n + 1)
				if got, want := tr.Rank(c, i), ref.rank(c, i); got != want {
					t.Fatalf("%s σ=%d: Rank(%d,%d)=%d, want %d", name, sigma, c, i, got, want)
				}
				total := ref.rank(c, n)
				if total > 0 {
					k := 1 + rng.Intn(total)
					if got, want := tr.Select(c, k), ref.sel(c, k); got != want {
						t.Fatalf("%s σ=%d: Select(%d,%d)=%d, want %d", name, sigma, c, k, got, want)
					}
				}
				if got := tr.Select(c, total+1); got != -1 {
					t.Fatalf("%s σ=%d: Select past end = %d, want -1", name, sigma, got)
				}
			}
		}
	}
}

func TestRankOfAbsentSymbol(t *testing.T) {
	s := refSeq{1, 1, 1, 1}
	for name, mk := range builders {
		tr := mk(s, 8)
		if tr.Rank(5, 4) != 0 {
			t.Fatalf("%s: Rank of absent symbol non-zero", name)
		}
		if tr.Select(5, 1) != -1 {
			t.Fatalf("%s: Select of absent symbol", name)
		}
		if tr.Rank(100, 4) != 0 {
			t.Fatalf("%s: Rank outside alphabet", name)
		}
	}
}

func TestSkewedDistribution(t *testing.T) {
	// 95% one symbol: Huffman shape should be much smaller than balanced.
	rng := rand.New(rand.NewSource(2))
	n, sigma := 50000, 200
	s := make([]uint32, n)
	for i := range s {
		if rng.Float64() < 0.95 {
			s[i] = 7
		} else {
			s[i] = uint32(rng.Intn(sigma))
		}
	}
	bal := NewBalanced(s, sigma)
	huf := NewHuffman(s, sigma)
	if huf.SizeBits() >= bal.SizeBits() {
		t.Fatalf("huffman %d bits not below balanced %d bits on skewed data",
			huf.SizeBits(), bal.SizeBits())
	}
	// Behaviour must match regardless of shape.
	for trial := 0; trial < 500; trial++ {
		c := uint32(rng.Intn(sigma))
		i := rng.Intn(n + 1)
		if bal.Rank(c, i) != huf.Rank(c, i) {
			t.Fatalf("shapes disagree on Rank(%d,%d)", c, i)
		}
	}
}

func TestBytesConstructors(t *testing.T) {
	s := []byte("abracadabra")
	tr := NewHuffmanBytes(s, 256)
	if tr.Rank('a', len(s)) != 5 {
		t.Fatalf("Rank(a)=%d, want 5", tr.Rank('a', len(s)))
	}
	if tr.Select('r', 2) != 9 {
		t.Fatalf("Select(r,2)=%d, want 9", tr.Select('r', 2))
	}
	tb := NewBalancedBytes(s, 256)
	if tb.Access(4) != 'c' {
		t.Fatalf("Access(4)=%c", tb.Access(4))
	}
}

func TestQuickRankSelectInverse(t *testing.T) {
	f := func(seed int64, nRaw uint16, sigmaRaw uint8, huffmanShape bool) bool {
		n := int(nRaw)%3000 + 1
		sigma := int(sigmaRaw)%300 + 2
		rng := rand.New(rand.NewSource(seed))
		s := randomSeq(rng, n, sigma)
		var tr *Tree
		if huffmanShape {
			tr = NewHuffman(s, sigma)
		} else {
			tr = NewBalanced(s, sigma)
		}
		c := uint32(rng.Intn(sigma))
		total := tr.Count(c)
		for k := 1; k <= total; k += 1 + total/17 {
			pos := tr.Select(c, k)
			if pos < 0 || tr.Access(pos) != c || tr.Rank(c, pos) != k-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCountSumsToLength(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSeq(rng, 5000, 37)
	for name, mk := range builders {
		tr := mk(s, 37)
		sum := 0
		for c := 0; c < 37; c++ {
			sum += tr.Count(uint32(c))
		}
		if sum != 5000 {
			t.Fatalf("%s: counts sum to %d", name, sum)
		}
	}
}

func BenchmarkRankBalanced(b *testing.B) {
	benchRank(b, NewBalanced)
}

func BenchmarkRankHuffman(b *testing.B) {
	benchRank(b, NewHuffman)
}

func benchRank(b *testing.B, mk func([]uint32, int) *Tree) {
	rng := rand.New(rand.NewSource(4))
	s := randomSeq(rng, 1<<20, 256)
	tr := mk(s, 256)
	type q struct {
		c uint32
		i int
	}
	qs := make([]q, 1024)
	for i := range qs {
		qs[i] = q{uint32(rng.Intn(256)), rng.Intn(1 << 20)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Rank(qs[i&1023].c, qs[i&1023].i)
	}
}

func BenchmarkAccess(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	s := randomSeq(rng, 1<<20, 256)
	tr := NewBalanced(s, 256)
	idx := make([]int, 1024)
	for i := range idx {
		idx[i] = rng.Intn(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Access(idx[i&1023])
	}
}

func TestAccessorsSigma(t *testing.T) {
	tr := NewBalanced([]uint32{0, 1, 2, 3}, 4)
	if tr.Sigma() != 4 || tr.Len() != 4 {
		t.Fatalf("Sigma=%d Len=%d", tr.Sigma(), tr.Len())
	}
	h := NewHuffman([]uint32{5, 5, 5, 2}, 6)
	if h.Sigma() != 6 || h.Count(5) != 3 || h.Count(2) != 1 || h.Count(0) != 0 {
		t.Fatal("huffman counts wrong")
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	// Degenerate alphabet: only one distinct symbol.
	tr := NewHuffman([]uint32{3, 3, 3, 3, 3}, 4)
	if tr.Count(3) != 5 {
		t.Fatalf("Count(3) = %d", tr.Count(3))
	}
	for i := 0; i < 5; i++ {
		if tr.Access(i) != 3 {
			t.Fatalf("Access(%d) = %d", i, tr.Access(i))
		}
	}
	if tr.Select(3, 5) != 4 || tr.Select(3, 6) != -1 {
		t.Fatal("Select on degenerate alphabet wrong")
	}
}
