package wavelet

import (
	"dyncoll/internal/bitvec"
	"dyncoll/internal/huffman"
	"dyncoll/internal/snap"
)

// Binary layout: sigma, n, the per-symbol code table (length + bits;
// the symbol is the table position), then the node tree in pre-order
// with a one-byte marker per node (0 = absent, 1 = leaf + symbol,
// 2 = internal + bit vector + children). Code lengths fit in 64 bits,
// so tree depth is bounded and decode recursion cannot blow the stack
// even on corrupt input.

// EncodeTo writes the tree's portable form into an encoder.
func (t *Tree) EncodeTo(e *snap.Encoder) {
	e.Uvarint(uint64(t.sigma))
	e.Uvarint(uint64(t.n))
	e.Uvarint(uint64(len(t.codes)))
	for _, c := range t.codes {
		e.Uvarint(uint64(c.Len))
		e.Uvarint(c.Bits)
	}
	var walk func(nd *node)
	walk = func(nd *node) {
		switch {
		case nd == nil:
			e.Byte(0)
		case nd.leaf >= 0:
			e.Byte(1)
			e.Uvarint(uint64(nd.leaf))
		default:
			e.Byte(2)
			nd.bits.EncodeTo(e)
			walk(nd.zero)
			walk(nd.one)
		}
	}
	walk(t.root)
}

// AppendBinary appends the tree's portable form to buf.
func (t *Tree) AppendBinary(buf []byte) ([]byte, error) {
	e := snap.Encoder{}
	t.EncodeTo(&e)
	return append(buf, e.Bytes()...), nil
}

// DecodeFrom reads a tree from a decoder; corrupt input latches an
// error on d and returns nil rather than panicking.
func DecodeFrom(d *snap.Decoder) *Tree {
	sigma := d.Int()
	n := d.Int()
	nCodes := d.Count(2)
	if d.Err() != nil {
		return nil
	}
	if sigma < 1 || nCodes != sigma {
		d.Fail("wavelet code table size %d for alphabet %d", nCodes, sigma)
		return nil
	}
	codes := make([]huffman.Code, nCodes)
	for i := range codes {
		l := d.Int()
		bits := d.Uvarint()
		if l > 64 {
			d.Fail("wavelet code length %d exceeds 64", l)
			return nil
		}
		codes[i] = huffman.Code{Symbol: i, Len: l, Bits: bits}
	}
	// walk decodes one node. want is the bit count the node must hold to
	// keep parent-to-child rank projections in range (leaves hold no
	// bits, so they accept any count); enforcing it at decode time means
	// Access/Rank/Select on a loaded tree can never index a child out of
	// range, even if the input was crafted.
	var walk func(depth, want int) *node
	walk = func(depth, want int) *node {
		if d.Err() != nil {
			return nil
		}
		if depth > 64 {
			d.Fail("wavelet node depth exceeds 64")
			return nil
		}
		switch marker := d.Byte(); marker {
		case 0:
			if want > 0 {
				d.Fail("wavelet node absent where %d bits expected", want)
			}
			return nil
		case 1:
			leaf := d.Int()
			if leaf >= sigma {
				d.Fail("wavelet leaf symbol %d outside alphabet %d", leaf, sigma)
				return nil
			}
			return &node{leaf: leaf}
		case 2:
			nd := &node{leaf: -1}
			nd.bits = bitvec.DecodeFrom(d)
			if d.Err() != nil {
				return nil
			}
			if nd.bits.Len() != want {
				d.Fail("wavelet node holds %d bits, want %d", nd.bits.Len(), want)
				return nil
			}
			nd.zero = walk(depth+1, nd.bits.Zeros())
			nd.one = walk(depth+1, nd.bits.Ones())
			return nd
		default:
			d.Fail("wavelet node marker %d", marker)
			return nil
		}
	}
	root := walk(0, n)
	if d.Err() != nil {
		return nil
	}
	return &Tree{sigma: sigma, n: n, root: root, codes: codes}
}

// UnmarshalBinary replaces t with the tree encoded in data.
func (t *Tree) UnmarshalBinary(data []byte) error {
	d := snap.NewDecoder(data)
	nt := DecodeFrom(d)
	if err := d.Err(); err != nil {
		return err
	}
	*t = *nt
	return nil
}
