package wavelet

import (
	"dyncoll/internal/bitvec"
	"dyncoll/internal/huffman"
	"dyncoll/internal/snap"
)

// Binary layout: sigma, n, the per-symbol code table (length + bits;
// the symbol is the table position), then the node tree in pre-order
// with a one-byte marker per node (0 = absent, 1 = leaf + symbol,
// 2 = internal + bit vector + children). Code lengths fit in 64 bits,
// so tree depth is bounded and decode recursion cannot blow the stack
// even on corrupt input.
//
// The in-memory representation is the flat level-order layout, but the
// wire format is unchanged from the pointer-node era: EncodeTo slices
// each node's bit run back out of its shared level vector
// (bitvec.EncodeRangeTo emits exactly what a standalone vector would),
// and DecodeFrom reads the per-node vectors and re-concatenates them
// into level vectors. Snapshots therefore round-trip byte-identically
// across the layout change.

// EncodeTo writes the tree's portable form into an encoder.
func (t *Tree) EncodeTo(e *snap.Encoder) {
	e.Uvarint(uint64(t.sigma))
	e.Uvarint(uint64(t.n))
	e.Uvarint(uint64(len(t.codes)))
	for _, c := range t.codes {
		e.Uvarint(uint64(c.Len))
		e.Uvarint(c.Bits)
	}
	var walk func(ni int32)
	walk = func(ni int32) {
		if ni < 0 {
			e.Byte(0)
			return
		}
		nd := &t.nodes[ni]
		if nd.leaf >= 0 {
			e.Byte(1)
			e.Uvarint(uint64(nd.leaf))
			return
		}
		e.Byte(2)
		t.levels[nd.depth].EncodeRangeTo(e, int(nd.off), int(nd.count))
		walk(nd.zero)
		walk(nd.one)
	}
	if len(t.nodes) == 0 {
		e.Byte(0)
		return
	}
	walk(0)
}

// AppendBinary appends the tree's portable form to buf.
func (t *Tree) AppendBinary(buf []byte) ([]byte, error) {
	e := snap.Encoder{}
	t.EncodeTo(&e)
	return append(buf, e.Bytes()...), nil
}

// decNode is the transient pointer shape used while reading the
// pre-order wire format; flatten converts it to the flat layout.
type decNode struct {
	bits      *bitvec.Vector
	zero, one *decNode
	leaf      int32
	count     int32
}

// DecodeFrom reads a tree from a decoder; corrupt input latches an
// error on d and returns nil rather than panicking.
func DecodeFrom(d *snap.Decoder) *Tree {
	sigma := d.Int()
	n := d.Int()
	nCodes := d.Count(2)
	if d.Err() != nil {
		return nil
	}
	if sigma < 1 || nCodes != sigma {
		d.Fail("wavelet code table size %d for alphabet %d", nCodes, sigma)
		return nil
	}
	codes := make([]huffman.Code, nCodes)
	for i := range codes {
		l := d.Int()
		bits := d.Uvarint()
		if l > 64 {
			d.Fail("wavelet code length %d exceeds 64", l)
			return nil
		}
		codes[i] = huffman.Code{Symbol: i, Len: l, Bits: bits}
	}
	// walk decodes one node. want is the bit count the node must hold to
	// keep parent-to-child rank projections in range (leaves hold no
	// bits, so they record want as their occurrence count); enforcing it
	// at decode time means Access/Rank/Select on a loaded tree can never
	// index a child out of range, even if the input was crafted.
	var walk func(depth, want int) *decNode
	walk = func(depth, want int) *decNode {
		if d.Err() != nil {
			return nil
		}
		if depth > 64 {
			d.Fail("wavelet node depth exceeds 64")
			return nil
		}
		switch marker := d.Byte(); marker {
		case 0:
			if want > 0 {
				d.Fail("wavelet node absent where %d bits expected", want)
			}
			return nil
		case 1:
			leaf := d.Int()
			if leaf >= sigma {
				d.Fail("wavelet leaf symbol %d outside alphabet %d", leaf, sigma)
				return nil
			}
			return &decNode{leaf: int32(leaf), count: int32(want)}
		case 2:
			nd := &decNode{leaf: -1}
			nd.bits = bitvec.DecodeFrom(d)
			if d.Err() != nil {
				return nil
			}
			if nd.bits.Len() != want {
				d.Fail("wavelet node holds %d bits, want %d", nd.bits.Len(), want)
				return nil
			}
			nd.count = int32(want)
			nd.zero = walk(depth+1, nd.bits.Zeros())
			nd.one = walk(depth+1, nd.bits.Ones())
			return nd
		default:
			d.Fail("wavelet node marker %d", marker)
			return nil
		}
	}
	root := walk(0, n)
	if d.Err() != nil {
		return nil
	}
	t := &Tree{sigma: sigma, n: n, codes: codes}
	t.flatten(root)
	return t
}

// flatten converts the decoded pointer shape into the flat level-order
// layout: nodes in one slice, per-level bit runs concatenated into one
// shared vector each.
func (t *Tree) flatten(root *decNode) {
	if root == nil {
		return
	}
	type queued struct {
		src *decNode
		ni  int32
	}
	t.nodes = append(t.nodes, node{zero: -1, one: -1, leaf: -1})
	level := []queued{{src: root, ni: 0}}
	var next []queued
	for depth := int32(0); len(level) > 0; depth++ {
		var lv *bitvec.Vector
		levelOnes := int32(0)
		next = next[:0]
		for _, q := range level {
			nd := t.nodes[q.ni] // copy: child appends below may reallocate
			nd.depth = depth
			nd.count = q.src.count
			if q.src.leaf >= 0 {
				nd.leaf = q.src.leaf
				t.nodes[q.ni] = nd
				continue
			}
			if lv == nil {
				lv = bitvec.New(0)
			}
			nd.off = int32(lv.Len())
			nd.onesBefore = levelOnes
			words, nb := q.src.bits.Words(), q.src.bits.Len()
			for wi := 0; wi < len(words); wi++ {
				nbits := 64
				if rest := nb - wi*64; rest < 64 {
					nbits = rest
				}
				lv.AppendWord(words[wi], nbits)
			}
			levelOnes += int32(q.src.bits.Ones())
			if q.src.zero != nil {
				nd.zero = int32(len(t.nodes))
				t.nodes = append(t.nodes, node{zero: -1, one: -1, leaf: -1})
				next = append(next, queued{src: q.src.zero, ni: nd.zero})
			}
			if q.src.one != nil {
				nd.one = int32(len(t.nodes))
				t.nodes = append(t.nodes, node{zero: -1, one: -1, leaf: -1})
				next = append(next, queued{src: q.src.one, ni: nd.one})
			}
			t.nodes[q.ni] = nd
		}
		if lv != nil {
			lv.Seal()
			t.levels = append(t.levels, lv)
		}
		level, next = next, level
	}
}

// UnmarshalBinary replaces t with the tree encoded in data.
func (t *Tree) UnmarshalBinary(data []byte) error {
	d := snap.NewDecoder(data)
	nt := DecodeFrom(d)
	if err := d.Err(); err != nil {
		return err
	}
	*t = *nt
	return nil
}
