// Package wavelet implements static wavelet trees over integer alphabets,
// providing Access, Rank and Select in O(code length) bit-vector
// operations per query.
//
// Two shapes are supported:
//
//   - Balanced: every symbol gets a ⌈log₂ σ⌉-bit code; queries cost
//     O(log σ).
//   - Huffman: symbols get canonical Huffman codes computed from their
//     frequencies, so the tree stores |S|·(H0(S)+1) + o(·) bits and
//     queries on symbol c cost O(len(code(c))) — the compressed sequence
//     representation required by the paper's space bounds (Table 1 space
//     column, and the string S of Section 5).
//
// The tree is immutable; the dynamic sequence needed by the *baseline*
// (prior-art) index lives in internal/baseline.
package wavelet

import (
	"fmt"
	"math/bits"

	"dyncoll/internal/bitvec"
	"dyncoll/internal/huffman"
)

// Tree is a static wavelet tree over symbols in [0, sigma).
type Tree struct {
	sigma int
	n     int
	root  *node
	codes []huffman.Code // per-symbol path from the root; Len==0 → absent
}

type node struct {
	bits *bitvec.Vector
	zero *node
	one  *node
	leaf int // symbol at this leaf; -1 for internal nodes
}

// NewBalanced builds a balanced wavelet tree of s over alphabet [0, sigma).
func NewBalanced(s []uint32, sigma int) *Tree {
	if sigma < 1 {
		panic("wavelet: sigma must be ≥ 1")
	}
	w := bits.Len(uint(sigma - 1))
	codes := make([]huffman.Code, sigma)
	for c := range codes {
		codes[c] = huffman.Code{Symbol: c, Len: w, Bits: uint64(c)}
	}
	if w == 0 {
		// Single-symbol alphabet: zero-length codes, leaf-only tree.
		for c := range codes {
			codes[c].Len = 0
		}
	}
	return build(s, sigma, codes)
}

// NewHuffman builds a Huffman-shaped wavelet tree of s over [0, sigma);
// code lengths follow symbol frequencies in s.
func NewHuffman(s []uint32, sigma int) *Tree {
	if sigma < 1 {
		panic("wavelet: sigma must be ≥ 1")
	}
	freq := make([]int64, sigma)
	for _, c := range s {
		if int(c) >= sigma {
			panic(fmt.Sprintf("wavelet: symbol %d outside alphabet [0,%d)", c, sigma))
		}
		freq[c]++
	}
	codes := huffman.Build(freq)
	return build(s, sigma, codes)
}

// NewBalancedBytes builds a balanced tree over a byte string with
// alphabet [0, sigma).
func NewBalancedBytes(s []byte, sigma int) *Tree {
	return NewBalanced(bytesToSyms(s), sigma)
}

// NewHuffmanBytes builds a Huffman-shaped tree over a byte string with
// alphabet [0, sigma).
func NewHuffmanBytes(s []byte, sigma int) *Tree {
	return NewHuffman(bytesToSyms(s), sigma)
}

func bytesToSyms(s []byte) []uint32 {
	out := make([]uint32, len(s))
	for i, b := range s {
		out[i] = uint32(b)
	}
	return out
}

func build(s []uint32, sigma int, codes []huffman.Code) *Tree {
	for _, c := range s {
		if int(c) >= sigma {
			panic(fmt.Sprintf("wavelet: symbol %d outside alphabet [0,%d)", c, sigma))
		}
	}
	t := &Tree{sigma: sigma, n: len(s), codes: codes}
	t.root = buildNode(s, codes, 0)
	return t
}

// buildNode recursively partitions s by code bit at the given depth.
// Code bits are consumed MSB-first.
func buildNode(s []uint32, codes []huffman.Code, depth int) *node {
	if len(s) == 0 {
		return nil
	}
	// Leaf when the first symbol's code is exhausted; all symbols in s
	// share the code prefix, so they are all the same symbol here.
	first := codes[s[0]]
	if first.Len == depth || first.Len == 0 {
		return &node{leaf: int(s[0])}
	}
	nd := &node{leaf: -1}
	v := bitvec.New(len(s))
	var zeros, ones []uint32
	for _, c := range s {
		code := codes[c]
		bit := code.Bits>>(uint(code.Len-depth-1))&1 == 1
		v.AppendBit(bit)
		if bit {
			ones = append(ones, c)
		} else {
			zeros = append(zeros, c)
		}
	}
	v.Seal()
	nd.bits = v
	nd.zero = buildNode(zeros, codes, depth+1)
	nd.one = buildNode(ones, codes, depth+1)
	return nd
}

// Len reports the sequence length.
func (t *Tree) Len() int { return t.n }

// Sigma reports the alphabet size.
func (t *Tree) Sigma() int { return t.sigma }

// Access returns the symbol at position i.
func (t *Tree) Access(i int) uint32 {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("wavelet: Access(%d) out of range [0,%d)", i, t.n))
	}
	nd := t.root
	for nd.leaf < 0 {
		if nd.bits.Get(i) {
			i = nd.bits.Rank1(i)
			nd = nd.one
		} else {
			i = nd.bits.Rank0(i)
			nd = nd.zero
		}
	}
	return uint32(nd.leaf)
}

// Rank returns the number of occurrences of symbol c in positions [0, i).
// i may equal Len().
func (t *Tree) Rank(c uint32, i int) int {
	if i < 0 || i > t.n {
		panic(fmt.Sprintf("wavelet: Rank(_, %d) out of range [0,%d]", i, t.n))
	}
	if int(c) >= t.sigma {
		return 0
	}
	code := t.codes[c]
	if code.Len == 0 && t.sigma > 1 {
		return 0 // symbol never occurs (Huffman shape)
	}
	nd := t.root
	for depth := 0; nd != nil && nd.leaf < 0; depth++ {
		if code.Bits>>(uint(code.Len-depth-1))&1 == 1 {
			i = nd.bits.Rank1(i)
			nd = nd.one
		} else {
			i = nd.bits.Rank0(i)
			nd = nd.zero
		}
	}
	if nd == nil || nd.leaf != int(c) {
		return 0
	}
	return i
}

// Select returns the position of the k-th occurrence (1-based) of symbol
// c, or -1 if c occurs fewer than k times.
func (t *Tree) Select(c uint32, k int) int {
	if k < 1 || int(c) >= t.sigma {
		return -1
	}
	code := t.codes[c]
	if code.Len == 0 && t.sigma > 1 {
		return -1
	}
	// Walk down recording the path, then walk back up with Select.
	type step struct {
		nd  *node
		bit bool
	}
	var path []step
	nd := t.root
	for depth := 0; nd != nil && nd.leaf < 0; depth++ {
		bit := code.Bits>>(uint(code.Len-depth-1))&1 == 1
		path = append(path, step{nd, bit})
		if bit {
			nd = nd.one
		} else {
			nd = nd.zero
		}
	}
	if nd == nil || nd.leaf != int(c) {
		return -1
	}
	// Count of c at the leaf.
	leafSize := t.n
	if len(path) > 0 {
		last := path[len(path)-1]
		if last.bit {
			leafSize = last.nd.bits.Ones()
		} else {
			leafSize = last.nd.bits.Zeros()
		}
	}
	if k > leafSize {
		return -1
	}
	pos := k - 1 // position within the leaf's virtual sequence
	for i := len(path) - 1; i >= 0; i-- {
		st := path[i]
		if st.bit {
			pos = st.nd.bits.Select1(pos + 1)
		} else {
			pos = st.nd.bits.Select0(pos + 1)
		}
	}
	return pos
}

// Count returns the number of occurrences of symbol c in the whole
// sequence.
func (t *Tree) Count(c uint32) int { return t.Rank(c, t.n) }

// SizeBits estimates the memory footprint of all node bit vectors in bits
// (excluding Go pointer overhead), for space-accounting experiments.
func (t *Tree) SizeBits() int64 {
	var total int64
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		if nd.bits != nil {
			total += nd.bits.SizeBits()
		}
		walk(nd.zero)
		walk(nd.one)
	}
	walk(t.root)
	return total
}
