// Package wavelet implements static wavelet trees over integer alphabets,
// providing Access, Rank and Select in O(code length) bit-vector
// operations per query.
//
// Two shapes are supported:
//
//   - Balanced: every symbol gets a ⌈log₂ σ⌉-bit code; queries cost
//     O(log σ).
//   - Huffman: symbols get canonical Huffman codes computed from their
//     frequencies, so the tree stores |S|·(H0(S)+1) + o(·) bits and
//     queries on symbol c cost O(len(code(c))) — the compressed sequence
//     representation required by the paper's space bounds (Table 1 space
//     column, and the string S of Section 5).
//
// Layout: the tree is pointer-free. Nodes live in one slice in
// level-order (children named by index), and the bit runs of all nodes
// at a depth are concatenated into one shared bitvec.Vector per level.
// A node-local rank is the level vector's rank at the node's offset
// minus a precomputed ones-before count, so Access/Rank/Select walk
// array indexes with one rank-directory probe per level instead of
// chasing per-node heap objects — and a build allocates O(levels)
// vectors instead of O(nodes).
//
// The tree is immutable; the dynamic sequence needed by the *baseline*
// (prior-art) index lives in internal/baseline.
package wavelet

import (
	"fmt"
	"math/bits"

	"dyncoll/internal/bitvec"
	"dyncoll/internal/huffman"
)

// Tree is a static wavelet tree over symbols in [0, sigma).
type Tree struct {
	sigma  int
	n      int
	codes  []huffman.Code   // per-symbol path from the root; Len==0 → absent
	nodes  []node           // level-order; root at index 0; empty iff n == 0
	levels []*bitvec.Vector // levels[d] = concatenated bit runs of depth-d internal nodes
}

// node is one flat tree node. Internal nodes own the bit run
// [off, off+count) of levels[depth]; leaves record their symbol and
// occurrence count.
type node struct {
	off        int32 // bit offset of this node's run within its level vector
	onesBefore int32 // set bits in the level vector before off
	count      int32 // sequence length at this node (bits for internal, occurrences for leaf)
	zero, one  int32 // child node indexes; -1 if absent
	leaf       int32 // symbol at this leaf; -1 for internal nodes
	depth      int32
}

// rank1 returns the number of set bits in the node's first i bits.
func (t *Tree) rank1(nd *node, i int) int {
	return t.levels[nd.depth].Rank1(int(nd.off)+i) - int(nd.onesBefore)
}

// rank1Pair returns the node-local Rank1 of both i and j (i ≤ j) in one
// shared scan.
func (t *Tree) rank1Pair(nd *node, i, j int) (int, int) {
	ri, rj := t.levels[nd.depth].Rank1Pair(int(nd.off)+i, int(nd.off)+j)
	return ri - int(nd.onesBefore), rj - int(nd.onesBefore)
}

// getRank1 returns the node's bit i and the node-local Rank1(i).
func (t *Tree) getRank1(nd *node, i int) (bool, int) {
	b, r := t.levels[nd.depth].GetRank1(int(nd.off) + i)
	return b, r - int(nd.onesBefore)
}

// select1 returns the node-local position of the k-th set bit (1-based).
func (t *Tree) select1(nd *node, k int) int {
	return t.levels[nd.depth].Select1(int(nd.onesBefore)+k) - int(nd.off)
}

// select0 returns the node-local position of the k-th unset bit (1-based).
func (t *Tree) select0(nd *node, k int) int {
	zerosBefore := int(nd.off) - int(nd.onesBefore)
	return t.levels[nd.depth].Select0(zerosBefore+k) - int(nd.off)
}

// balancedCodes assigns every symbol of [0, sigma) its fixed-width
// ⌈log₂ σ⌉-bit code (zero-length codes for the single-symbol alphabet,
// which yields a leaf-only tree).
func balancedCodes(sigma int) []huffman.Code {
	if sigma < 1 {
		panic("wavelet: sigma must be ≥ 1")
	}
	w := bits.Len(uint(sigma - 1))
	codes := make([]huffman.Code, sigma)
	for c := range codes {
		codes[c] = huffman.Code{Symbol: c, Len: w, Bits: uint64(c)}
	}
	return codes
}

// NewBalanced builds a balanced wavelet tree of s over alphabet [0, sigma).
func NewBalanced(s []uint32, sigma int) *Tree {
	return build(s, sigma, balancedCodes(sigma))
}

// NewHuffman builds a Huffman-shaped wavelet tree of s over [0, sigma);
// code lengths follow symbol frequencies in s.
func NewHuffman(s []uint32, sigma int) *Tree {
	if sigma < 1 {
		panic("wavelet: sigma must be ≥ 1")
	}
	freq := make([]int64, sigma)
	for _, c := range s {
		if int(c) >= sigma {
			panic(fmt.Sprintf("wavelet: symbol %d outside alphabet [0,%d)", c, sigma))
		}
		freq[c]++
	}
	codes := huffman.Build(freq)
	return build(s, sigma, codes)
}

// NewBalancedBytes builds a balanced tree over a byte string with
// alphabet [0, sigma).
func NewBalancedBytes(s []byte, sigma int) *Tree {
	codes := balancedCodes(sigma)
	for _, c := range s {
		if int(c) >= sigma {
			panic(fmt.Sprintf("wavelet: symbol %d outside alphabet [0,%d)", c, sigma))
		}
	}
	return buildSeq(s, sigma, codes)
}

// NewHuffmanBytes builds a Huffman-shaped tree over a byte string with
// alphabet [0, sigma). The byte path skips the []uint32 conversion the
// general constructors pay, so index rebuilds feed the BWT in directly.
func NewHuffmanBytes(s []byte, sigma int) *Tree {
	if sigma < 1 {
		panic("wavelet: sigma must be ≥ 1")
	}
	freq := make([]int64, sigma)
	for _, c := range s {
		if int(c) >= sigma {
			panic(fmt.Sprintf("wavelet: symbol %d outside alphabet [0,%d)", c, sigma))
		}
		freq[c]++
	}
	codes := huffman.Build(freq)
	return buildSeq(s, sigma, codes)
}

func build(s []uint32, sigma int, codes []huffman.Code) *Tree {
	for _, c := range s {
		if int(c) >= sigma {
			panic(fmt.Sprintf("wavelet: symbol %d outside alphabet [0,%d)", c, sigma))
		}
	}
	return buildSeq(s, sigma, codes)
}

// buildSeq constructs the flat tree breadth-first. Two ping-pong symbol
// buffers carry the per-node segments from one depth to the next: a
// stable partition of each internal node's segment writes its zeros
// then its ones, which is exactly the level-order segment layout of the
// children. The whole build allocates the node slice, one bit vector
// per level, and two symbol buffers — independent of the node count.
func buildSeq[S byte | uint32](s []S, sigma int, codes []huffman.Code) *Tree {
	t := &Tree{sigma: sigma, n: len(s), codes: codes}
	if len(s) == 0 {
		return t
	}
	type segment struct {
		node       int32
		start, end int32
	}
	cur := make([]S, len(s))
	copy(cur, s)
	next := make([]S, len(s))
	segs := []segment{{node: 0, start: 0, end: int32(len(s))}}
	var nextSegs []segment
	t.nodes = append(t.nodes, node{zero: -1, one: -1, leaf: -1})
	// bitAt[c] is symbol c's code bit at the current depth: one byte
	// load per symbol in the hot partition loops instead of a code
	// struct load plus shifts.
	bitAt := make([]uint8, sigma)
	for depth := int32(0); len(segs) > 0; depth++ {
		for c, code := range codes {
			if int32(code.Len) > depth {
				bitAt[c] = uint8(code.Bits >> uint(int32(code.Len)-depth-1) & 1)
			}
		}
		lv := bitvec.New(0)
		levelOnes := int32(0)
		hasBits := false
		nextSegs = nextSegs[:0]
		nextPos := int32(0)
		for _, sg := range segs {
			// Work on a copy: appending child nodes below may reallocate
			// t.nodes, so writes go back by index at the end.
			nd := t.nodes[sg.node]
			nd.depth = depth
			nd.count = sg.end - sg.start
			first := codes[cur[sg.start]]
			if int32(first.Len) == depth || first.Len == 0 {
				// All symbols in the segment share the full code prefix,
				// so they are one symbol: a leaf.
				nd.leaf = int32(cur[sg.start])
				t.nodes[sg.node] = nd
				continue
			}
			hasBits = true
			nd.off = int32(lv.Len())
			nd.onesBefore = levelOnes
			// First pass: emit the code bits at this depth, 64 at a time.
			shift := uint(0)
			var reg uint64
			ones := int32(0)
			for _, c := range cur[sg.start:sg.end] {
				bit := bitAt[c]
				reg |= uint64(bit) << shift
				ones += int32(bit)
				if shift++; shift == 64 {
					lv.AppendWord(reg, 64)
					reg, shift = 0, 0
				}
			}
			if shift > 0 {
				lv.AppendWord(reg, int(shift))
			}
			levelOnes += ones
			// Second pass: stable-partition the segment into the next
			// buffer — zeros first, then ones.
			zw := nextPos
			ow := nextPos + (sg.end - sg.start - ones)
			zeroStart, oneStart := zw, ow
			for _, c := range cur[sg.start:sg.end] {
				if bitAt[c] == 1 {
					next[ow] = c
					ow++
				} else {
					next[zw] = c
					zw++
				}
			}
			nextPos = ow
			if zw > zeroStart {
				nd.zero = int32(len(t.nodes))
				t.nodes = append(t.nodes, node{zero: -1, one: -1, leaf: -1})
				nextSegs = append(nextSegs, segment{node: nd.zero, start: zeroStart, end: zw})
			}
			if ow > oneStart {
				nd.one = int32(len(t.nodes))
				t.nodes = append(t.nodes, node{zero: -1, one: -1, leaf: -1})
				nextSegs = append(nextSegs, segment{node: nd.one, start: oneStart, end: ow})
			}
			t.nodes[sg.node] = nd
		}
		if hasBits {
			lv.Seal()
			t.levels = append(t.levels, lv)
		}
		cur, next = next, cur
		segs, nextSegs = nextSegs, segs
	}
	return t
}

// Len reports the sequence length.
func (t *Tree) Len() int { return t.n }

// Sigma reports the alphabet size.
func (t *Tree) Sigma() int { return t.sigma }

// Access returns the symbol at position i.
func (t *Tree) Access(i int) uint32 {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("wavelet: Access(%d) out of range [0,%d)", i, t.n))
	}
	nd := &t.nodes[0]
	for nd.leaf < 0 {
		bit, r1 := t.getRank1(nd, i)
		if bit {
			i = r1
			nd = &t.nodes[nd.one]
		} else {
			i = i - r1
			nd = &t.nodes[nd.zero]
		}
	}
	return uint32(nd.leaf)
}

// AccessRank returns the symbol c at position i together with
// Rank(c, i), in one root-to-leaf walk: the projected index that Access
// maintains at each level is exactly the node-local rank, so when the
// walk reaches the leaf it has already computed the symbol's rank. The
// FM-index LF mapping (one Access plus one Rank on the same row) is
// this operation, so fusing it halves every LF step.
func (t *Tree) AccessRank(i int) (uint32, int) {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("wavelet: AccessRank(%d) out of range [0,%d)", i, t.n))
	}
	nd := &t.nodes[0]
	for nd.leaf < 0 {
		bit, r1 := t.getRank1(nd, i)
		if bit {
			i = r1
			nd = &t.nodes[nd.one]
		} else {
			i = i - r1
			nd = &t.nodes[nd.zero]
		}
	}
	return uint32(nd.leaf), i
}

// Rank returns the number of occurrences of symbol c in positions [0, i).
// i may equal Len().
func (t *Tree) Rank(c uint32, i int) int {
	if i < 0 || i > t.n {
		panic(fmt.Sprintf("wavelet: Rank(_, %d) out of range [0,%d]", i, t.n))
	}
	if int(c) >= t.sigma || t.n == 0 {
		return 0
	}
	code := t.codes[c]
	if code.Len == 0 && t.sigma > 1 {
		return 0 // symbol never occurs (Huffman shape)
	}
	ni := int32(0)
	nd := &t.nodes[0]
	for depth := int32(0); ni >= 0 && nd.leaf < 0; depth++ {
		r1 := t.rank1(nd, i)
		if code.Bits>>uint(int32(code.Len)-depth-1)&1 == 1 {
			i = r1
			ni = nd.one
		} else {
			i = i - r1
			ni = nd.zero
		}
		if ni >= 0 {
			nd = &t.nodes[ni]
		}
	}
	if ni < 0 || nd.leaf != int32(c) {
		return 0
	}
	return i
}

// RankPair returns Rank(c, i) and Rank(c, j) for i ≤ j, walking the
// symbol's root-to-leaf path once and ranking both interval endpoints
// with shared superblock and word loads at every level. Backward search
// projects [lo, hi) through exactly this pair, so fusing the two
// traversals halves the pointer and directory work of the query path.
func (t *Tree) RankPair(c uint32, i, j int) (int, int) {
	if i > j {
		panic(fmt.Sprintf("wavelet: RankPair(_, %d, %d) not ordered", i, j))
	}
	if i < 0 || j > t.n {
		panic(fmt.Sprintf("wavelet: RankPair(_, %d, %d) out of range [0,%d]", i, j, t.n))
	}
	if int(c) >= t.sigma || t.n == 0 {
		return 0, 0
	}
	code := t.codes[c]
	if code.Len == 0 && t.sigma > 1 {
		return 0, 0
	}
	ni := int32(0)
	nd := &t.nodes[0]
	for depth := int32(0); ni >= 0 && nd.leaf < 0; depth++ {
		ri, rj := t.rank1Pair(nd, i, j)
		if code.Bits>>uint(int32(code.Len)-depth-1)&1 == 1 {
			i, j = ri, rj
			ni = nd.one
		} else {
			i, j = i-ri, j-rj
			ni = nd.zero
		}
		if ni >= 0 {
			nd = &t.nodes[ni]
		}
	}
	if ni < 0 || nd.leaf != int32(c) {
		return 0, 0
	}
	return i, j
}

// Select returns the position of the k-th occurrence (1-based) of symbol
// c, or -1 if c occurs fewer than k times.
func (t *Tree) Select(c uint32, k int) int {
	if k < 1 || int(c) >= t.sigma || t.n == 0 {
		return -1
	}
	code := t.codes[c]
	if code.Len == 0 && t.sigma > 1 {
		return -1
	}
	// Walk down recording the path (code length ≤ 64 bounds the depth),
	// then walk back up with Select.
	var path [64]struct {
		ni  int32
		bit bool
	}
	steps := 0
	ni := int32(0)
	nd := &t.nodes[0]
	for depth := int32(0); ni >= 0 && nd.leaf < 0; depth++ {
		bit := code.Bits>>uint(int32(code.Len)-depth-1)&1 == 1
		path[steps].ni, path[steps].bit = ni, bit
		steps++
		if bit {
			ni = nd.one
		} else {
			ni = nd.zero
		}
		if ni >= 0 {
			nd = &t.nodes[ni]
		}
	}
	if ni < 0 || nd.leaf != int32(c) {
		return -1
	}
	if k > int(nd.count) {
		return -1
	}
	pos := k - 1 // position within the leaf's virtual sequence
	for i := steps - 1; i >= 0; i-- {
		st := &t.nodes[path[i].ni]
		if path[i].bit {
			pos = t.select1(st, pos+1)
		} else {
			pos = t.select0(st, pos+1)
		}
	}
	return pos
}

// Count returns the number of occurrences of symbol c in the whole
// sequence.
func (t *Tree) Count(c uint32) int { return t.Rank(c, t.n) }

// SizeBits estimates the memory footprint of the level bit vectors and
// the node table in bits, for space-accounting experiments.
func (t *Tree) SizeBits() int64 {
	var total int64
	for _, lv := range t.levels {
		total += lv.SizeBits()
	}
	total += int64(len(t.nodes)) * 28 * 8 // 7 × int32 fields per node
	return total
}
