package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naive is a reference implementation backed by a []bool.
type naive []bool

func (n naive) rank1(i int) int {
	c := 0
	for _, b := range n[:i] {
		if b {
			c++
		}
	}
	return c
}

func (n naive) select1(k int) int {
	for i, b := range n {
		if b {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func (n naive) select0(k int) int {
	for i, b := range n {
		if !b {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func randomBits(rng *rand.Rand, n int, p float64) naive {
	bs := make(naive, n)
	for i := range bs {
		bs[i] = rng.Float64() < p
	}
	return bs
}

func TestEmptyVector(t *testing.T) {
	v := New(0)
	v.Seal()
	if v.Len() != 0 || v.Ones() != 0 || v.Zeros() != 0 {
		t.Fatalf("empty vector: Len=%d Ones=%d Zeros=%d", v.Len(), v.Ones(), v.Zeros())
	}
	if got := v.Rank1(0); got != 0 {
		t.Fatalf("Rank1(0)=%d, want 0", got)
	}
}

func TestSingleBit(t *testing.T) {
	for _, b := range []bool{false, true} {
		v := New(1)
		v.AppendBit(b)
		v.Seal()
		if v.Get(0) != b {
			t.Fatalf("Get(0)=%v, want %v", v.Get(0), b)
		}
		wantOnes := 0
		if b {
			wantOnes = 1
		}
		if v.Ones() != wantOnes {
			t.Fatalf("Ones=%d, want %d", v.Ones(), wantOnes)
		}
		if b {
			if got := v.Select1(1); got != 0 {
				t.Fatalf("Select1(1)=%d, want 0", got)
			}
		} else {
			if got := v.Select0(1); got != 0 {
				t.Fatalf("Select0(1)=%d, want 0", got)
			}
		}
	}
}

func TestRankSelectAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 63, 64, 65, 511, 512, 513, 1000, 4096, 10000} {
		for _, p := range []float64{0, 0.01, 0.5, 0.99, 1} {
			ref := randomBits(rng, n, p)
			v := FromBools(ref)
			ones := ref.rank1(n)
			if v.Ones() != ones {
				t.Fatalf("n=%d p=%v: Ones=%d, want %d", n, p, v.Ones(), ones)
			}
			for i := 0; i <= n; i += 1 + n/97 {
				if got, want := v.Rank1(i), ref.rank1(i); got != want {
					t.Fatalf("n=%d p=%v: Rank1(%d)=%d, want %d", n, p, i, got, want)
				}
			}
			for k := 1; k <= ones; k += 1 + ones/53 {
				if got, want := v.Select1(k), ref.select1(k); got != want {
					t.Fatalf("n=%d p=%v: Select1(%d)=%d, want %d", n, p, k, got, want)
				}
			}
			zeros := n - ones
			for k := 1; k <= zeros; k += 1 + zeros/53 {
				if got, want := v.Select0(k), ref.select0(k); got != want {
					t.Fatalf("n=%d p=%v: Select0(%d)=%d, want %d", n, p, k, got, want)
				}
			}
		}
	}
}

func TestSelectRankInverse(t *testing.T) {
	// Property: Rank1(Select1(k)) == k-1 and Get(Select1(k)) == true.
	f := func(seed int64, nRaw uint16, pRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		p := float64(pRaw) / 255
		rng := rand.New(rand.NewSource(seed))
		v := FromBools(randomBits(rng, n, p))
		for k := 1; k <= v.Ones(); k += 1 + v.Ones()/41 {
			pos := v.Select1(k)
			if v.Rank1(pos) != k-1 || !v.Get(pos) {
				return false
			}
		}
		for k := 1; k <= v.Zeros(); k += 1 + v.Zeros()/41 {
			pos := v.Select0(k)
			if v.Rank0(pos) != k-1 || v.Get(pos) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFromWords(t *testing.T) {
	words := []uint64{0xF0F0F0F0F0F0F0F0, 0x1}
	v := FromWords(words, 70)
	if v.Len() != 70 {
		t.Fatalf("Len=%d, want 70", v.Len())
	}
	if v.Ones() != 33 {
		t.Fatalf("Ones=%d, want 33", v.Ones())
	}
	if !v.Get(64) || v.Get(65) {
		t.Fatal("FromWords bit layout wrong")
	}
}

func TestAppendWord(t *testing.T) {
	v := New(10)
	v.AppendWord(0b1011, 4)
	v.Seal()
	want := []bool{true, true, false, true}
	for i, b := range want {
		if v.Get(i) != b {
			t.Fatalf("bit %d = %v, want %v", i, v.Get(i), b)
		}
	}
}

func TestAppendAfterSealPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v := New(1)
	v.Seal()
	v.AppendBit(true)
}

func TestRankOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v := FromBools(naive{true})
	v.Rank1(2)
}

func TestSelectOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v := FromBools(naive{true})
	v.Select1(2)
}

func TestAllOnesAllZeros(t *testing.T) {
	n := 2000
	ones := FromBools(randomBits(rand.New(rand.NewSource(2)), n, 1))
	for k := 1; k <= n; k += 37 {
		if ones.Select1(k) != k-1 {
			t.Fatalf("all-ones Select1(%d)=%d", k, ones.Select1(k))
		}
	}
	zeros := FromBools(make(naive, n))
	for k := 1; k <= n; k += 37 {
		if zeros.Select0(k) != k-1 {
			t.Fatalf("all-zeros Select0(%d)=%d", k, zeros.Select0(k))
		}
	}
}

func TestSizeBits(t *testing.T) {
	v := FromBools(randomBits(rand.New(rand.NewSource(3)), 10000, 0.5))
	// Directory overhead should be a small fraction of the raw bits.
	if v.SizeBits() > 3*10000 {
		t.Fatalf("SizeBits=%d too large for 10000-bit vector", v.SizeBits())
	}
	if v.SizeBits() < 10000 {
		t.Fatalf("SizeBits=%d smaller than payload", v.SizeBits())
	}
}

func BenchmarkRank1(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	v := FromBools(randomBits(rng, 1<<20, 0.5))
	idx := make([]int, 1024)
	for i := range idx {
		idx[i] = rng.Intn(v.Len())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Rank1(idx[i&1023])
	}
}

func BenchmarkSelect1(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	v := FromBools(randomBits(rng, 1<<20, 0.5))
	idx := make([]int, 1024)
	for i := range idx {
		idx[i] = 1 + rng.Intn(v.Ones())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Select1(idx[i&1023])
	}
}
