package bitvec

import "dyncoll/internal/snap"

// AppendBinary appends the vector's portable form — bit count plus raw
// words — to buf. The rank/select directories are not stored; they are
// deterministic functions of the bits and are rebuilt by Seal on load.
func (v *Vector) AppendBinary(buf []byte) ([]byte, error) {
	e := snap.Encoder{}
	e.Uvarint(uint64(v.n))
	e.Words(v.words)
	return append(buf, e.Bytes()...), nil
}

// EncodeTo writes the vector's portable form into an encoder.
func (v *Vector) EncodeTo(e *snap.Encoder) {
	e.Uvarint(uint64(v.n))
	e.Words(v.words)
}

// EncodeRangeTo writes the standalone encoding of bits [off, off+n) of
// v — byte-identical to what EncodeTo would emit for a vector holding
// exactly those bits. The wavelet tree stores all nodes of a level in
// one shared vector and uses this to keep its per-node wire format
// unchanged.
func (v *Vector) EncodeRangeTo(e *snap.Encoder, off, n int) {
	if off < 0 || n < 0 || off+n > v.n {
		panic("bitvec: EncodeRangeTo range out of bounds")
	}
	e.Uvarint(uint64(n))
	nWords := (n + wordBits - 1) / wordBits
	e.Uvarint(uint64(nWords))
	shift := uint(off % wordBits)
	w := off / wordBits
	for i := 0; i < nWords; i++ {
		word := v.words[w+i] >> shift
		if shift != 0 && w+i+1 < len(v.words) {
			word |= v.words[w+i+1] << (wordBits - shift)
		}
		if i == nWords-1 {
			if rem := n % wordBits; rem != 0 {
				word &= lowMask(rem)
			}
		}
		e.Byte(byte(word))
		e.Byte(byte(word >> 8))
		e.Byte(byte(word >> 16))
		e.Byte(byte(word >> 24))
		e.Byte(byte(word >> 32))
		e.Byte(byte(word >> 40))
		e.Byte(byte(word >> 48))
		e.Byte(byte(word >> 56))
	}
}

// DecodeFrom reads a sealed vector from a decoder, validating the bit
// count against the word payload; corrupt input latches an error on d
// and returns nil rather than panicking.
func DecodeFrom(d *snap.Decoder) *Vector {
	n := d.Int()
	words := d.Words()
	if d.Err() != nil {
		return nil
	}
	if n > len(words)*wordBits || (len(words) > 0 && n <= (len(words)-1)*wordBits) {
		d.Fail("bitvec bit count %d does not match %d words", n, len(words))
		return nil
	}
	// Bits at positions ≥ n must be zero: Seal popcounts whole words, so
	// stray high bits would inflate the rank directory past the bits the
	// encoder vouched for — and every structural check layered on top
	// (wavelet child sizes, sample counts) would validate against the
	// corrupted counts instead of catching them.
	if rem := n % wordBits; rem != 0 && len(words) > 0 {
		if words[len(words)-1]&^lowMask(rem) != 0 {
			d.Fail("bitvec stray bits beyond length %d", n)
			return nil
		}
	}
	return FromWords(words, n)
}

// UnmarshalBinary replaces v with the vector encoded in data.
func (v *Vector) UnmarshalBinary(data []byte) error {
	d := snap.NewDecoder(data)
	nv := DecodeFrom(d)
	if err := d.Err(); err != nil {
		return err
	}
	*v = *nv
	return nil
}
