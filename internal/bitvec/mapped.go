package bitvec

import "dyncoll/internal/snap"

// Mapped form: the sealed vector's words *and* its rank/select
// directories are written verbatim, so a mapped open reconstructs the
// Vector by aliasing five arrays — no Seal pass, no O(n) popcounts.
// The arrays may point into read-only mapped memory; nothing in the
// query path writes to them, and Append/Seal on a mapped vector would
// panic on the sealed check before touching the words.

// EncodeMapped writes the sealed vector in mapped form.
func (v *Vector) EncodeMapped(e *snap.MapEncoder) {
	if !v.sealed {
		panic("bitvec: EncodeMapped before Seal")
	}
	e.U64(uint64(v.n))
	e.U64(uint64(v.ones))
	e.Words(v.words)
	e.Int64s(v.superRank)
	e.Int32s(v.selHint1)
	e.Int32s(v.selHint0)
}

// ViewMapped reconstructs a sealed vector from mapped form, validating
// the directory's structural invariants (lengths, monotonicity,
// totals, hint ranges) in O(n/512) so that corrupt directories fail
// the open instead of panicking a later query. The bit payload itself
// is not checksummed here — that is the opt-in full-verify pass.
func ViewMapped(mv *snap.MapView) *Vector {
	n := mv.Int()
	ones := mv.Int()
	words := mv.Words()
	superRank := mv.Int64s()
	selHint1 := mv.Int32s()
	selHint0 := mv.Int32s()
	if mv.Err() != nil {
		return nil
	}
	if ones > n {
		mv.Fail("bitvec: %d ones in %d bits", ones, n)
		return nil
	}
	if len(words) != (n+wordBits-1)/wordBits {
		mv.Fail("bitvec: %d words for %d bits", len(words), n)
		return nil
	}
	nSuper := (len(words) + superWords - 1) / superWords
	if len(superRank) != nSuper+1 {
		mv.Fail("bitvec: rank directory has %d entries, want %d", len(superRank), nSuper+1)
		return nil
	}
	if superRank[0] != 0 || superRank[nSuper] != int64(ones) {
		mv.Fail("bitvec: rank directory totals [%d,%d], want [0,%d]", superRank[0], superRank[nSuper], ones)
		return nil
	}
	for i := 0; i < nSuper; i++ {
		if superRank[i] > superRank[i+1] || superRank[i+1]-superRank[i] > superBits {
			mv.Fail("bitvec: rank directory not monotone at superblock %d", i)
			return nil
		}
	}
	if want := hintCount(ones); len(selHint1) != want {
		mv.Fail("bitvec: %d select-1 hints, want %d", len(selHint1), want)
		return nil
	}
	if want := hintCount(n - ones); len(selHint0) != want {
		mv.Fail("bitvec: %d select-0 hints, want %d", len(selHint0), want)
		return nil
	}
	for _, h := range selHint1 {
		if h < 0 || int(h) >= nSuper {
			mv.Fail("bitvec: select-1 hint %d out of %d superblocks", h, nSuper)
			return nil
		}
	}
	for _, h := range selHint0 {
		if h < 0 || int(h) >= nSuper {
			mv.Fail("bitvec: select-0 hint %d out of %d superblocks", h, nSuper)
			return nil
		}
	}
	return &Vector{
		words: words, n: n, sealed: true,
		superRank: superRank, selHint1: selHint1, selHint0: selHint0,
		ones: ones,
	}
}

// hintCount is the number of select hints buildSelectHints records for
// k matching bits: one per full selectSample block.
func hintCount(k int) int {
	if k <= 0 {
		return 0
	}
	return (k + selectSample - 1) / selectSample
}
