// Package bitvec provides static bit vectors with constant-time rank and
// near-constant-time select support.
//
// A Vector stores n bits in ⌈n/64⌉ machine words. Rank support adds a
// two-level counter hierarchy (one absolute count per 512-bit superblock
// plus in-superblock word scanning), giving O(1) Rank1/Rank0. Select is
// answered by a binary search over superblock counts accelerated with
// positional hints sampled every selectSample ones, giving O(log n) worst
// case and close to O(1) in practice.
//
// Vectors in this package are immutable after Seal; the dynamic variants
// used for lazy deletion live in packages sparsebits and dynbits.
package bitvec

import (
	"fmt"
	"math/bits"
)

const (
	wordBits      = 64
	superWords    = 8 // words per superblock: 512 bits
	superBits     = wordBits * superWords
	selectSample  = 512 // one select hint per this many set bits
	selectSample0 = 512 // and per this many zero bits
)

// Vector is a static bit vector with rank/select support.
//
// The zero value is an empty vector. Bits are appended with AppendBit or
// AppendWord and the vector must be sealed with Seal before rank or select
// queries are issued.
type Vector struct {
	words  []uint64
	n      int // number of valid bits
	sealed bool

	// rank directory
	superRank []int64 // ones before each superblock

	// select hints: superblock index containing the (k*selectSample)-th one/zero
	selHint1 []int32
	selHint0 []int32

	ones int
}

// New returns an empty vector with capacity for n bits pre-allocated.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative capacity")
	}
	return &Vector{words: make([]uint64, 0, (n+wordBits-1)/wordBits)}
}

// FromBools builds a sealed vector from a slice of booleans.
func FromBools(bs []bool) *Vector {
	v := New(len(bs))
	for _, b := range bs {
		v.AppendBit(b)
	}
	v.Seal()
	return v
}

// FromWords builds a sealed vector from words containing n valid bits.
// The words slice is used directly (not copied).
func FromWords(words []uint64, n int) *Vector {
	if n < 0 || n > len(words)*wordBits {
		panic("bitvec: bit count out of range of words")
	}
	v := &Vector{words: words, n: n}
	v.Seal()
	return v
}

// Len reports the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Ones reports the number of set bits. Valid after Seal.
func (v *Vector) Ones() int { return v.ones }

// Zeros reports the number of unset bits. Valid after Seal.
func (v *Vector) Zeros() int { return v.n - v.ones }

// AppendBit appends one bit. Must not be called after Seal.
func (v *Vector) AppendBit(b bool) {
	if v.sealed {
		panic("bitvec: append to sealed vector")
	}
	w, off := v.n/wordBits, uint(v.n%wordBits)
	if w == len(v.words) {
		v.words = append(v.words, 0)
	}
	if b {
		v.words[w] |= 1 << off
	}
	v.n++
}

// AppendWord appends the low nbits bits of w (LSB first). It shifts
// whole words instead of looping bit-at-a-time, so bulk producers (the
// wavelet-tree builder, marshal translation) append 64 bits per call.
func (v *Vector) AppendWord(w uint64, nbits int) {
	if nbits < 0 || nbits > wordBits {
		panic("bitvec: AppendWord bit count out of range")
	}
	if v.sealed {
		panic("bitvec: append to sealed vector")
	}
	if nbits == 0 {
		return
	}
	w &= lowMask(nbits)
	off := uint(v.n % wordBits)
	if off == 0 {
		v.words = append(v.words, w)
	} else {
		v.words[len(v.words)-1] |= w << off
		if int(off)+nbits > wordBits {
			v.words = append(v.words, w>>(wordBits-off))
		}
	}
	v.n += nbits
}

// Get reports the bit at position i (0-based).
func (v *Vector) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: Get(%d) out of range [0,%d)", i, v.n))
	}
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Seal freezes the vector and builds the rank/select directories.
// Seal is idempotent.
func (v *Vector) Seal() {
	if v.sealed {
		return
	}
	v.sealed = true
	nSuper := (len(v.words) + superWords - 1) / superWords
	v.superRank = make([]int64, nSuper+1)
	ones := 0
	for s := 0; s < nSuper; s++ {
		v.superRank[s] = int64(ones)
		end := (s + 1) * superWords
		if end > len(v.words) {
			end = len(v.words)
		}
		for _, w := range v.words[s*superWords : end] {
			ones += bits.OnesCount64(w)
		}
	}
	v.superRank[nSuper] = int64(ones)
	v.ones = ones
	v.buildSelectHints()
}

func (v *Vector) buildSelectHints() {
	// selHint1[h] is the superblock containing the (h*selectSample+1)-th
	// set bit; selHint0[h] likewise for zero bits. These bracket the
	// binary search in Select1/Select0.
	nSuper := len(v.superRank) - 1
	v.selHint1 = make([]int32, 0, v.ones/selectSample+2)
	v.selHint0 = make([]int32, 0, (v.n-v.ones)/selectSample0+2)
	next1, next0 := 1, 1
	for s := 0; s < nSuper; s++ {
		onesThrough := int(v.superRank[s+1])
		bitsThrough := (s + 1) * superBits
		if bitsThrough > v.n {
			bitsThrough = v.n
		}
		zerosThrough := bitsThrough - onesThrough
		for next1 <= onesThrough {
			v.selHint1 = append(v.selHint1, int32(s))
			next1 += selectSample
		}
		for next0 <= zerosThrough {
			v.selHint0 = append(v.selHint0, int32(s))
			next0 += selectSample0
		}
	}
}

// Rank1 returns the number of set bits in positions [0, i).
// i may equal Len(), in which case the total popcount is returned.
func (v *Vector) Rank1(i int) int {
	if i < 0 || i > v.n {
		panic(fmt.Sprintf("bitvec: Rank1(%d) out of range [0,%d]", i, v.n))
	}
	if !v.sealed {
		panic("bitvec: rank on unsealed vector")
	}
	s := i / superBits
	r := int(v.superRank[s])
	w := s * superWords
	for end := i / wordBits; w < end; w++ {
		r += bits.OnesCount64(v.words[w])
	}
	if rem := uint(i % wordBits); rem != 0 {
		r += bits.OnesCount64(v.words[w] & (1<<rem - 1))
	}
	return r
}

// Rank0 returns the number of unset bits in positions [0, i).
func (v *Vector) Rank0(i int) int { return i - v.Rank1(i) }

// Rank1Pair returns Rank1(i) and Rank1(j) for i ≤ j in one pass: the
// superblock base and the whole words up to i are loaded once and the
// scan continues from there to j, instead of two independent
// traversals. Backward search always ranks both interval endpoints on
// the same symbol path, which makes this the query hot path's
// fundamental operation.
func (v *Vector) Rank1Pair(i, j int) (ri, rj int) {
	if i > j {
		panic(fmt.Sprintf("bitvec: Rank1Pair(%d, %d) not ordered", i, j))
	}
	if i < 0 || j > v.n {
		panic(fmt.Sprintf("bitvec: Rank1Pair(%d, %d) out of range [0,%d]", i, j, v.n))
	}
	if !v.sealed {
		panic("bitvec: rank on unsealed vector")
	}
	s := i / superBits
	if j/superBits != s {
		// Endpoints in different superblocks: each starts from its own
		// directory entry anyway.
		return v.Rank1(i), v.Rank1(j)
	}
	r := int(v.superRank[s])
	w := s * superWords
	wi, wj := i/wordBits, j/wordBits
	for ; w < wi; w++ {
		r += bits.OnesCount64(v.words[w])
	}
	ri = r
	if rem := uint(i % wordBits); rem != 0 {
		ri += bits.OnesCount64(v.words[wi] & (1<<rem - 1))
	}
	for ; w < wj; w++ {
		r += bits.OnesCount64(v.words[w])
	}
	rj = r
	if rem := uint(j % wordBits); rem != 0 {
		rj += bits.OnesCount64(v.words[wj] & (1<<rem - 1))
	}
	return ri, rj
}

// GetRank1 returns the bit at position i together with Rank1(i),
// sharing the superblock and word loads of the two lookups. This is
// the per-level step of wavelet-tree Access.
func (v *Vector) GetRank1(i int) (bool, int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: GetRank1(%d) out of range [0,%d)", i, v.n))
	}
	if !v.sealed {
		panic("bitvec: rank on unsealed vector")
	}
	s := i / superBits
	r := int(v.superRank[s])
	w := s * superWords
	for end := i / wordBits; w < end; w++ {
		r += bits.OnesCount64(v.words[w])
	}
	word := v.words[i/wordBits]
	rem := uint(i % wordBits)
	r += bits.OnesCount64(word & (1<<rem - 1))
	return word>>rem&1 == 1, r
}

// Select1 returns the position of the k-th set bit (1-based k).
// It panics if k is out of range [1, Ones()].
func (v *Vector) Select1(k int) int {
	if k < 1 || k > v.ones {
		panic(fmt.Sprintf("bitvec: Select1(%d) out of range [1,%d]", k, v.ones))
	}
	// Bracket the superblock search with hints, then binary search for
	// the largest superblock lo with superRank[lo] < k.
	h := (k - 1) / selectSample
	lo := int(v.selHint1[h])
	hi := len(v.superRank) - 2
	if h+1 < len(v.selHint1) {
		hi = int(v.selHint1[h+1])
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(v.superRank[mid]) < k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - int(v.superRank[lo])
	w := lo * superWords
	for {
		c := bits.OnesCount64(v.words[w])
		if rem <= c {
			break
		}
		rem -= c
		w++
	}
	return w*wordBits + selectInWord(v.words[w], rem)
}

// Select0 returns the position of the k-th unset bit (1-based k).
func (v *Vector) Select0(k int) int {
	zeros := v.n - v.ones
	if k < 1 || k > zeros {
		panic(fmt.Sprintf("bitvec: Select0(%d) out of range [1,%d]", k, zeros))
	}
	h := (k - 1) / selectSample0
	lo := int(v.selHint0[h])
	hi := len(v.superRank) - 2
	if h+1 < len(v.selHint0) {
		hi = int(v.selHint0[h+1])
	}
	zerosBefore := func(s int) int { return s*superBits - int(v.superRank[s]) }
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if zerosBefore(mid) < k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := k - zerosBefore(lo)
	w := lo * superWords
	for {
		bitsHere := wordBits
		if (w+1)*wordBits > v.n {
			bitsHere = v.n - w*wordBits
		}
		c := bitsHere - bits.OnesCount64(v.words[w]&lowMask(bitsHere))
		if rem <= c {
			break
		}
		rem -= c
		w++
	}
	return w*wordBits + selectInWord(^v.words[w], rem)
}

// Words exposes the underlying words (read-only by convention).
func (v *Vector) Words() []uint64 { return v.words }

// SizeBits estimates the in-memory footprint of the vector and its rank
// directories in bits, for space-accounting experiments.
func (v *Vector) SizeBits() int64 {
	s := int64(len(v.words)) * 64
	s += int64(len(v.superRank)) * 64
	s += int64(len(v.selHint1)+len(v.selHint0)) * 32
	return s
}

func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// selectInWord returns the position (0..63) of the k-th set bit of w, 1-based.
func selectInWord(w uint64, k int) int {
	// Process byte by byte using popcount; k is small (≤64).
	for i := 0; i < 8; i++ {
		b := byte(w >> uint(8*i))
		c := bits.OnesCount8(b)
		if k <= c {
			for j := 0; j < 8; j++ {
				if b&(1<<uint(j)) != 0 {
					k--
					if k == 0 {
						return 8*i + j
					}
				}
			}
		}
		k -= c
	}
	panic("bitvec: selectInWord: not enough set bits")
}
