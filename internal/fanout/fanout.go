// Package fanout is the module's fan-out/merge contract: enumerate n
// independent producers in parallel and merge their streams into one
// consumer with propagated early break. The in-process sharding layer
// (dyncoll.WithShards) uses it to merge per-shard query streams; the
// networked frontend (internal/server) uses the identical contract to
// merge per-backend NDJSON streams — a backend is one more shard level,
// so the merge semantics must be the same in both places.
package fanout

import (
	"sync"
	"sync/atomic"
)

// Chunk is the number of values a producer banks locally before one
// channel send hands them to the consumer. A send per value measured as
// a 3–6× serial regression (PR 2); chunking amortizes the
// synchronization to 1/Chunk of a channel op per value while a
// per-value atomic load keeps early break responsive.
const Chunk = 64

// FanOut merges n per-producer enumerations into a single consumer.
// Each producer streams through run(i, emit) in its own goroutine;
// values are banked into small chunks and multiplexed over a channel
// into fn on the caller's goroutine. When fn returns false every
// producer observes the stop flag at its next emit and unwinds.
//
// The deferred epilogue signals stop and then waits for every producer
// to exit before FanOut returns — on normal completion, early break,
// and consumer panic/Goexit alike. The wait matters beyond lock
// hygiene: producers read caller-owned arguments (e.g. a pattern
// slice), so returning while one was still scanning would hand the
// caller back a buffer a goroutine is reading (a data race if the
// caller reuses it). With n == 1 the enumeration runs inline with no
// goroutines or chunking at all.
func FanOut[T any](n int, run func(i int, emit func(T) bool), fn func(T) bool) {
	if n == 1 {
		run(0, fn)
		return
	}
	var stop atomic.Bool        // consumer gone: producers finish at their next emit
	done := make(chan struct{}) // closed with stop; unblocks in-flight chunk sends
	ch := make(chan []T, n)
	var wg sync.WaitGroup
	defer func() {
		stop.Store(true)
		close(done)
		wg.Wait()
	}()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chunk := make([]T, 0, Chunk)
			flush := func() bool {
				if len(chunk) == 0 {
					return true
				}
				select {
				case ch <- chunk:
					chunk = make([]T, 0, Chunk)
					return true
				case <-done:
					return false
				}
			}
			run(i, func(v T) bool {
				if stop.Load() {
					return false
				}
				chunk = append(chunk, v)
				if len(chunk) == Chunk {
					return flush()
				}
				return true
			})
			flush() // final partial chunk; a refused send means the consumer left
		}(i)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	for chunk := range ch {
		for _, v := range chunk {
			if !fn(v) {
				return
			}
		}
	}
}

// ForEach runs fn for producers 0..n-1 concurrently and waits. Like
// FanOut, a single producer runs inline so the n == 1 floor pays no
// goroutine overhead per operation.
func ForEach(n int, fn func(i int)) {
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Gather runs collect for every producer concurrently and concatenates
// the per-producer slices (producer order, so the result is
// deterministic given deterministic producers). collect is responsible
// for its own locking.
func Gather[T any](n int, collect func(i int) []T) []T {
	parts := make([][]T, n)
	ForEach(n, func(i int) { parts[i] = collect(i) })
	var out []T
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
