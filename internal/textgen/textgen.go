// Package textgen generates synthetic document collections and query
// workloads for the benchmark harness.
//
// The paper's bounds are parameterised only by the collection size n, the
// alphabet size σ, the empirical entropy Hk, the pattern length |P|, the
// number of occurrences occ, and the suffix-array sampling rate s. All of
// them are directly controllable here:
//
//   - Markov sources of order k with a tunable skew produce text whose
//     k-th order entropy ranges from ~log σ (skew 0, uniform) down to a
//     fraction of a bit (high skew), standing in for the real text
//     databases the paper targets;
//   - document lengths follow a bounded Zipf distribution, as observed in
//     real document collections;
//   - patterns are sampled from the generated text (planted patterns, so
//     occ > 0) or drawn uniformly at random (mostly absent patterns).
//
// All generators are deterministic given the seed, so every benchmark row
// and test is reproducible.
package textgen

import (
	"math"
	"math/rand"

	"dyncoll/internal/doc"
)

// Source generates text over an alphabet of size Sigma with a Markov
// context of Order symbols. Skew ∈ [0, 1) biases the per-context symbol
// distribution: 0 is uniform (Hk = log₂ σ), values close to 1 concentrate
// the mass on few symbols (low Hk).
type Source struct {
	Sigma int     // alphabet size (2 … 255); output bytes are 1…Sigma
	Order int     // Markov order k (0 = i.i.d. symbols)
	Skew  float64 // 0 = uniform … →1 = highly repetitive

	rng *rand.Rand
	// perm maps (context hash, rank) to a symbol so that different
	// contexts prefer different symbols, like real text.
	perm []byte
}

// NewSource creates a deterministic Markov text source.
func NewSource(sigma, order int, skew float64, seed int64) *Source {
	if sigma < 2 {
		sigma = 2
	}
	if sigma > 255 {
		sigma = 255
	}
	if order < 0 {
		order = 0
	}
	if skew < 0 {
		skew = 0
	}
	if skew >= 1 {
		skew = 0.999
	}
	s := &Source{
		Sigma: sigma,
		Order: order,
		Skew:  skew,
		rng:   rand.New(rand.NewSource(seed)),
		perm:  make([]byte, sigma),
	}
	for i := range s.perm {
		s.perm[i] = byte(i + 1)
	}
	s.rng.Shuffle(sigma, func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
	return s
}

// Generate produces n bytes of text. Bytes are in [1, Sigma]; the zero
// byte is never emitted (it is the reserved document separator).
func (s *Source) Generate(n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		// The context is a hash of exactly the last Order symbols, so the
		// conditional distribution is fully determined by them — the
		// defining property of an order-k source.
		var ctx uint64
		for j := i - s.Order; j < i; j++ {
			var sym uint64
			if j >= 0 {
				sym = uint64(out[j])
			}
			ctx = ctx*131 + sym
		}
		out[i] = s.nextSymbol(ctx)
	}
	return out
}

// nextSymbol draws a symbol from the geometric-like distribution of the
// given context.
func (s *Source) nextSymbol(ctx uint64) byte {
	if s.Skew == 0 {
		return byte(s.rng.Intn(s.Sigma) + 1)
	}
	// Geometric rank: P(rank = r) ∝ skew^r. Sample by inversion.
	r := 0
	for s.rng.Float64() < s.Skew && r < s.Sigma-1 {
		r++
	}
	// Rotate the preference order by the context so different contexts
	// favour different symbols (otherwise Hk would equal H0).
	idx := (r + int(ctx%uint64(s.Sigma))) % s.Sigma
	return s.perm[idx]
}

// Collection describes a synthetic document collection.
type Collection struct {
	Sigma    int
	Docs     []doc.Doc
	Total    int // total payload symbols
	seed     int64
	src      *Source
	nextID   uint64
	lenRng   *rand.Rand
	zipfSkew float64
	minLen   int
	maxLen   int
}

// CollectionOptions configure NewCollection.
type CollectionOptions struct {
	Sigma   int     // alphabet size, default 64
	Order   int     // Markov order, default 2
	Skew    float64 // symbol skew, default 0.5
	MinLen  int     // minimum document length, default 64
	MaxLen  int     // maximum document length, default 4096
	ZipfExp float64 // document-length Zipf exponent, default 1.2
	Seed    int64
}

func (o CollectionOptions) withDefaults() CollectionOptions {
	if o.Sigma == 0 {
		o.Sigma = 64
	}
	if o.Order == 0 {
		o.Order = 2
	}
	if o.Skew == 0 {
		o.Skew = 0.5
	}
	if o.MinLen == 0 {
		o.MinLen = 64
	}
	if o.MaxLen == 0 {
		o.MaxLen = 4096
	}
	if o.MaxLen < o.MinLen {
		o.MaxLen = o.MinLen
	}
	if o.ZipfExp == 0 {
		o.ZipfExp = 1.2
	}
	return o
}

// NewCollection creates an empty collection generator.
func NewCollection(opts CollectionOptions) *Collection {
	opts = opts.withDefaults()
	return &Collection{
		Sigma:    opts.Sigma,
		seed:     opts.Seed,
		src:      NewSource(opts.Sigma, opts.Order, opts.Skew, opts.Seed),
		lenRng:   rand.New(rand.NewSource(opts.Seed ^ 0x7f4a7c15_9e3779b9)),
		zipfSkew: opts.ZipfExp,
		minLen:   opts.MinLen,
		maxLen:   opts.MaxLen,
		nextID:   1,
	}
}

// NextDoc generates one more document with a Zipf-distributed length.
func (c *Collection) NextDoc() doc.Doc {
	n := c.zipfLen()
	d := doc.Doc{ID: c.nextID, Data: c.src.Generate(n)}
	c.nextID++
	c.Docs = append(c.Docs, d)
	c.Total += n
	return d
}

// NextDocLen generates one more document of exactly n symbols.
func (c *Collection) NextDocLen(n int) doc.Doc {
	d := doc.Doc{ID: c.nextID, Data: c.src.Generate(n)}
	c.nextID++
	c.Docs = append(c.Docs, d)
	c.Total += n
	return d
}

// GenerateTotal appends documents until the total payload reaches at
// least n symbols and returns the documents added by this call.
func (c *Collection) GenerateTotal(n int) []doc.Doc {
	start := len(c.Docs)
	for c.Total < n {
		c.NextDoc()
	}
	return c.Docs[start:]
}

// zipfLen draws a document length from a bounded Zipf distribution.
func (c *Collection) zipfLen() int {
	span := c.maxLen - c.minLen
	if span <= 0 {
		return c.minLen
	}
	// Inverse-transform sampling: ℓ = span^(1-u) concentrates mass on
	// short documents with a heavy tail, the shape Zipf length models
	// produce, while staying within [minLen, maxLen].
	u := c.lenRng.Float64()
	l := int(math.Pow(float64(span), 1-u))
	if l < 1 {
		l = 1
	}
	if l > span {
		l = span
	}
	return c.minLen + l - 1
}

// PatternSampler draws query patterns from a collection.
type PatternSampler struct {
	docs []doc.Doc
	rng  *rand.Rand
}

// NewPatternSampler samples patterns from docs deterministically.
func NewPatternSampler(docs []doc.Doc, seed int64) *PatternSampler {
	return &PatternSampler{docs: docs, rng: rand.New(rand.NewSource(seed))}
}

// Planted returns a pattern of the given length copied from a random
// position of a random document, so it has at least one occurrence.
func (p *PatternSampler) Planted(length int) []byte {
	for tries := 0; tries < 64; tries++ {
		d := p.docs[p.rng.Intn(len(p.docs))]
		if len(d.Data) < length {
			continue
		}
		off := p.rng.Intn(len(d.Data) - length + 1)
		out := make([]byte, length)
		copy(out, d.Data[off:off+length])
		return out
	}
	// All documents shorter than length: fall back to a random pattern.
	return p.Random(length, 4)
}

// Random returns a uniformly random pattern over [1, sigma], usually
// absent from the collection.
func (p *PatternSampler) Random(length, sigma int) []byte {
	out := make([]byte, length)
	for i := range out {
		out[i] = byte(p.rng.Intn(sigma) + 1)
	}
	return out
}

// PlantedSet returns count planted patterns of the given length.
func (p *PatternSampler) PlantedSet(count, length int) [][]byte {
	out := make([][]byte, count)
	for i := range out {
		out[i] = p.Planted(length)
	}
	return out
}
