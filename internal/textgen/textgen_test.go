package textgen

import (
	"bytes"
	"testing"

	"dyncoll/internal/huffman"
)

func TestSourceDeterministic(t *testing.T) {
	a := NewSource(16, 2, 0.5, 42).Generate(1000)
	b := NewSource(16, 2, 0.5, 42).Generate(1000)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different text")
	}
	c := NewSource(16, 2, 0.5, 43).Generate(1000)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical text")
	}
}

func TestSourceAlphabetRange(t *testing.T) {
	for _, sigma := range []int{2, 4, 16, 64, 255} {
		s := NewSource(sigma, 1, 0.3, 7)
		text := s.Generate(5000)
		seen := make(map[byte]bool)
		for _, b := range text {
			if b == 0 || int(b) > sigma {
				t.Fatalf("sigma=%d: symbol %d out of range [1,%d]", sigma, b, sigma)
			}
			seen[b] = true
		}
		if sigma <= 16 && len(seen) < sigma/2 {
			t.Fatalf("sigma=%d: only %d distinct symbols used", sigma, len(seen))
		}
	}
}

func TestSkewLowersEntropy(t *testing.T) {
	const n = 1 << 16
	uniform := NewSource(64, 0, 0, 1).Generate(n)
	skewed := NewSource(64, 0, 0.9, 1).Generate(n)
	h0u := huffman.H0Bytes(uniform)
	h0s := huffman.H0Bytes(skewed)
	if h0u < 5.5 {
		t.Fatalf("uniform σ=64 text should have H0 ≈ 6, got %.3f", h0u)
	}
	if h0s > h0u-1 {
		t.Fatalf("skew 0.9 should lower H0 well below uniform: got %.3f vs %.3f", h0s, h0u)
	}
}

func TestMarkovOrderLowersHk(t *testing.T) {
	const n = 1 << 16
	// σ=64 with skew 0.8: each context's geometric distribution carries
	// ≈3.6 bits while the context-rotated marginal is ≈ log₂ 64 = 6 bits.
	text := NewSource(64, 2, 0.8, 5).Generate(n)
	h0 := huffman.H0Bytes(text)
	h2 := huffman.Hk(text, 2)
	if h2 > h0+1e-9 {
		t.Fatalf("Hk must not exceed H0: H2=%.3f H0=%.3f", h2, h0)
	}
	// Conditioning on the full order-2 context must reveal the skewed
	// per-context distribution, dropping the entropy well below H0.
	if h2 > h0*0.75 {
		t.Fatalf("order-2 source should show context structure: H2=%.3f H0=%.3f", h2, h0)
	}
}

func TestCollectionTotals(t *testing.T) {
	c := NewCollection(CollectionOptions{Sigma: 16, MinLen: 10, MaxLen: 100, Seed: 3})
	added := c.GenerateTotal(10_000)
	if c.Total < 10_000 {
		t.Fatalf("GenerateTotal stopped at %d symbols", c.Total)
	}
	if len(added) != len(c.Docs) {
		t.Fatalf("first GenerateTotal should report all docs: %d vs %d", len(added), len(c.Docs))
	}
	sum := 0
	ids := make(map[uint64]bool)
	for _, d := range c.Docs {
		if len(d.Data) < 10 || len(d.Data) > 100 {
			t.Fatalf("doc length %d outside [10,100]", len(d.Data))
		}
		if ids[d.ID] {
			t.Fatalf("duplicate doc ID %d", d.ID)
		}
		ids[d.ID] = true
		if !d.Valid() {
			t.Fatal("generated doc contains the reserved zero byte")
		}
		sum += len(d.Data)
	}
	if sum != c.Total {
		t.Fatalf("Total mismatch: %d vs %d", sum, c.Total)
	}
}

func TestNextDocLen(t *testing.T) {
	c := NewCollection(CollectionOptions{Seed: 9})
	d := c.NextDocLen(123)
	if len(d.Data) != 123 {
		t.Fatalf("NextDocLen(123) returned %d bytes", len(d.Data))
	}
}

func TestZipfLengthsSkewShort(t *testing.T) {
	c := NewCollection(CollectionOptions{MinLen: 1, MaxLen: 1000, Seed: 11})
	short, long := 0, 0
	for i := 0; i < 2000; i++ {
		d := c.NextDoc()
		if len(d.Data) <= 100 {
			short++
		} else if len(d.Data) >= 500 {
			long++
		}
	}
	if short <= long {
		t.Fatalf("Zipf lengths should favour short docs: short=%d long=%d", short, long)
	}
}

func TestPlantedPatternOccurs(t *testing.T) {
	c := NewCollection(CollectionOptions{Sigma: 8, Seed: 21})
	c.GenerateTotal(20_000)
	ps := NewPatternSampler(c.Docs, 99)
	for _, l := range []int{1, 4, 8, 32} {
		p := ps.Planted(l)
		if len(p) != l {
			t.Fatalf("pattern length %d != %d", len(p), l)
		}
		found := false
		for _, d := range c.Docs {
			if bytes.Contains(d.Data, p) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("planted pattern %v not found in collection", p)
		}
	}
}

func TestPlantedFallsBackWhenTooLong(t *testing.T) {
	docs := NewCollection(CollectionOptions{Sigma: 4, MinLen: 5, MaxLen: 5, Seed: 2})
	docs.NextDoc()
	ps := NewPatternSampler(docs.Docs, 1)
	p := ps.Planted(50) // longer than every document
	if len(p) != 50 {
		t.Fatalf("fallback pattern has length %d", len(p))
	}
}

func TestRandomPatternRange(t *testing.T) {
	ps := NewPatternSampler(nil, 5)
	p := ps.Random(100, 4)
	for _, b := range p {
		if b < 1 || b > 4 {
			t.Fatalf("random pattern byte %d outside [1,4]", b)
		}
	}
}

func TestPlantedSet(t *testing.T) {
	c := NewCollection(CollectionOptions{Seed: 31})
	c.GenerateTotal(5000)
	ps := NewPatternSampler(c.Docs, 7)
	set := ps.PlantedSet(10, 6)
	if len(set) != 10 {
		t.Fatalf("PlantedSet returned %d patterns", len(set))
	}
	for _, p := range set {
		if len(p) != 6 {
			t.Fatalf("pattern length %d", len(p))
		}
	}
}

func TestSourceParameterClamping(t *testing.T) {
	s := NewSource(1, -5, -1, 0) // all out of range
	if s.Sigma != 2 || s.Order != 0 || s.Skew != 0 {
		t.Fatalf("clamping failed: %+v", s)
	}
	s2 := NewSource(500, 0, 2, 0)
	if s2.Sigma != 255 || s2.Skew >= 1 {
		t.Fatalf("upper clamping failed: %+v", s2)
	}
	text := s2.Generate(100)
	if len(text) != 100 {
		t.Fatal("generation after clamping failed")
	}
}
