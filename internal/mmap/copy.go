package mmap

import (
	"io"
	"os"
)

// openCopy reads the whole file into heap — the portable degradation
// of Open, also used when mmap itself fails (e.g. the file lives on a
// filesystem without mmap support).
func openCopy(f *os.File, size int64) (*Mapping, error) {
	if size < 0 || int64(int(size)) != size {
		size = 0
	}
	buf := make([]byte, int(size))
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), buf); err != nil {
		return nil, err
	}
	return &Mapping{data: buf}, nil
}
