//go:build !linux

package mmap

import "os"

// ReadAhead is a no-op where posix_fadvise is unavailable; reads still
// work, just without the widened readahead window.
func ReadAhead(f *os.File) {}
