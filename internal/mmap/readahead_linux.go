//go:build linux

package mmap

import (
	"os"
	"syscall"
)

// ReadAhead hints that f is about to be read sequentially end to end
// (posix_fadvise SEQUENTIAL doubles the kernel readahead window), so
// full-file loads — v1 snapshot restore, WAL replay, checkpoint
// segments — overlap disk latency with decoding. Advisory: failure is
// ignored.
func ReadAhead(f *os.File) {
	// POSIX_FADV_SEQUENTIAL = 2; syscall exposes fadvise64 only by
	// number, the constant is stable kernel ABI.
	_, _, _ = syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), 0, 0, 2, 0, 0)
}
