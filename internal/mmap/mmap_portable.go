//go:build !linux && !darwin

package mmap

import "os"

func openSized(f *os.File, size int64) (*Mapping, error) {
	return openCopy(f, size)
}

// Close releases the heap copy.
func (m *Mapping) Close() error {
	m.data = nil
	return nil
}

// DontNeed is a no-op without a real mapping: the heap copy is freed
// by the garbage collector when the last view goes away.
func (m *Mapping) DontNeed(p []byte) {}
