// Package mmap provides read-only memory mapping of snapshot files
// plus filesystem access-pattern hints, with portable fallbacks.
//
// Build tags: the real implementation (mmap_unix.go) is compiled on
// linux and darwin, where syscall.Mmap/Munmap/Madvise exist in the
// standard library. Everywhere else mmap_portable.go reads the file
// into heap memory and every hint degrades to a no-op, so callers can
// use the package unconditionally: the mapped open path still works,
// it just loses the beyond-RAM property on exotic platforms. The
// readahead hint (fadvise) additionally needs a raw syscall number and
// is therefore linux-only (readahead_linux.go / readahead_other.go).
package mmap

import "os"

// Mapping is a read-only view of a file's contents. On platforms with
// mmap support Data aliases the page cache directly; otherwise it is a
// heap copy. Close invalidates Data — callers must guarantee no slice
// derived from Data is used afterwards.
type Mapping struct {
	data   []byte
	mapped bool // true when data is a real mapping that needs munmap
}

// Data returns the file contents. The slice must be treated as
// read-only: on mapped platforms it is PROT_READ memory and a write
// faults.
func (m *Mapping) Data() []byte { return m.data }

// Mapped reports whether Data is served by the page cache in place
// (true) or is a heap copy (false).
func (m *Mapping) Mapped() bool { return m.mapped }

// Open maps f read-only. The file handle can be closed by the caller
// once Open returns; the mapping stays valid.
func Open(f *os.File) (*Mapping, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return openSized(f, fi.Size())
}

// contains reports the offset of p inside the mapping, or ok=false
// when p does not alias m.data (e.g. a heap copy made by a decoder).
func (m *Mapping) contains(p []byte) (off int, ok bool) {
	if len(p) == 0 || len(m.data) == 0 {
		return 0, false
	}
	return sliceOffset(m.data, p)
}
