//go:build linux || darwin

package mmap

import (
	"os"
	"syscall"
)

func openSized(f *os.File, size int64) (*Mapping, error) {
	if size == 0 {
		// Zero-length mmap is an error on linux; an empty snapshot is
		// simply an empty (invalid) byte slice for the decoder.
		return &Mapping{}, nil
	}
	if size < 0 || int64(int(size)) != size {
		return nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (some network/FUSE mounts):
		// fall back to a heap read rather than failing the open.
		return openCopy(f, size)
	}
	// Snapshot access is section-directory driven, not sequential; let
	// the kernel fault pages on demand with default readahead.
	return &Mapping{data: data, mapped: true}, nil
}

// Close unmaps the file. Any outstanding view into Data becomes
// invalid; concurrent DontNeed callers are excluded by the caller's
// lifecycle (see mappedFile in the root package).
func (m *Mapping) Close() error {
	if !m.mapped {
		m.data = nil
		return nil
	}
	data := m.data
	m.data, m.mapped = nil, false
	return syscall.Munmap(data)
}

// DontNeed tells the kernel the pages backing p (a sub-slice of Data)
// will not be needed again, so the page cache can drop them early —
// used when a landed rebuild supersedes a mapped store. The range is
// rounded inward to page boundaries; a range smaller than a page, a
// heap-copy mapping, or a foreign slice is a no-op.
func (m *Mapping) DontNeed(p []byte) {
	if !m.mapped {
		return
	}
	off, ok := m.contains(p)
	if !ok {
		return
	}
	page := os.Getpagesize()
	lo := (off + page - 1) / page * page
	hi := (off + len(p)) / page * page
	if hi <= lo {
		return
	}
	// Advisory only: an error (e.g. locked pages) costs correctness
	// nothing, the pages just stay resident until normal eviction.
	_ = syscall.Madvise(m.data[lo:hi], syscall.MADV_DONTNEED)
}
