package mmap

import "unsafe"

// sliceOffset returns the byte offset of sub inside base when sub's
// backing array lies within base's, using pointer arithmetic on the
// two slice headers. Both slices must be non-empty.
func sliceOffset(base, sub []byte) (off int, ok bool) {
	b := uintptr(unsafe.Pointer(&base[0]))
	s := uintptr(unsafe.Pointer(&sub[0]))
	if s < b || s-b > uintptr(len(base)) {
		return 0, false
	}
	off = int(s - b)
	if off+len(sub) > len(base) {
		return 0, false
	}
	return off, true
}
