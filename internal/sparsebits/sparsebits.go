// Package sparsebits implements the deletion bitmaps of Lemmas 2 and 3 of
// the paper: a bit vector B of n bits, initially all ones, in which bits
// are only ever cleared (zero(i)) and the set positions of any range can be
// reported in O(k) time, k the output size.
//
// Two representations are provided:
//
//   - Dense (Lemma 2): one machine word per 64 bits plus a bitsucc.Set of
//     non-empty word indices; O(n) bits.
//   - Compressed (Lemma 3): for a vector with at most n/τ zeros, words of
//     τ bits are stored as sorted lists of their zero positions, so total
//     space is O(n·log τ/τ) bits; the same non-empty-word directory drives
//     reporting.
//
// Both support zero(i) in O(logᵋ n)-class time (here O(log₆₄ n) via the
// word directory) and report(s,e) in O(k).
package sparsebits

import (
	"fmt"
	"math/bits"

	"dyncoll/internal/bitsucc"
)

// Dense is the Lemma 2 structure: n bits, all initially one, supporting
// Zero(i) and Report(s,e) with O(n) bits of space.
type Dense struct {
	n     int
	words []uint64
	dir   *bitsucc.Set // indices of non-empty (≠0) words
	zeros int
}

// NewDense creates a Dense vector of n one-bits.
func NewDense(n int) *Dense {
	if n < 0 {
		panic("sparsebits: negative length")
	}
	nw := (n + 63) / 64
	d := &Dense{n: n, words: make([]uint64, nw), dir: bitsucc.New(nw)}
	for i := 0; i < nw; i++ {
		d.words[i] = ^uint64(0)
		d.dir.Add(i)
	}
	if rem := n % 64; rem != 0 && nw > 0 {
		d.words[nw-1] = 1<<uint(rem) - 1
		if d.words[nw-1] == 0 {
			d.dir.Remove(nw - 1)
		}
	}
	if n == 0 && nw == 0 {
		d.words = nil
	}
	return d
}

// Len reports the number of bits.
func (d *Dense) Len() int { return d.n }

// Zeros reports how many bits have been cleared.
func (d *Dense) Zeros() int { return d.zeros }

// Get reports the bit at position i.
func (d *Dense) Get(i int) bool {
	if i < 0 || i >= d.n {
		panic(fmt.Sprintf("sparsebits: Get(%d) out of range [0,%d)", i, d.n))
	}
	return d.words[i>>6]&(1<<uint(i&63)) != 0
}

// Zero clears bit i. Clearing an already-cleared bit is a no-op.
func (d *Dense) Zero(i int) {
	if i < 0 || i >= d.n {
		panic(fmt.Sprintf("sparsebits: Zero(%d) out of range [0,%d)", i, d.n))
	}
	w, b := i>>6, uint(i&63)
	if d.words[w]&(1<<b) == 0 {
		return
	}
	d.words[w] &^= 1 << b
	d.zeros++
	if d.words[w] == 0 {
		d.dir.Remove(w)
	}
}

// Report calls fn for every set bit position in [s, e], in increasing
// order. If fn returns false, reporting stops. Cost is O(k) in the number
// of reported positions (plus O(1) directory steps per non-empty word).
func (d *Dense) Report(s, e int, fn func(pos int) bool) {
	if s < 0 {
		s = 0
	}
	if e >= d.n {
		e = d.n - 1
	}
	if s > e {
		return
	}
	ws, we := s>>6, e>>6
	w := d.dir.Next(ws)
	for w >= 0 && w <= we {
		word := d.words[w]
		if w == ws {
			word &= ^uint64(0) << uint(s&63)
		}
		if w == we {
			if r := uint(e & 63); r != 63 {
				word &= 1<<(r+1) - 1
			}
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			if !fn(w<<6 + b) {
				return
			}
			word &= word - 1
		}
		w = d.dir.Next(w + 1)
	}
}

// AppendRange appends all set positions in [s, e] to dst and returns it.
func (d *Dense) AppendRange(dst []int, s, e int) []int {
	d.Report(s, e, func(pos int) bool {
		dst = append(dst, pos)
		return true
	})
	return dst
}

// SizeBits estimates the memory footprint in bits.
func (d *Dense) SizeBits() int64 {
	return int64(len(d.words))*64 + d.dir.SizeBits()
}

// Compressed is the Lemma 3 structure: n bits with an expected O(n/τ)
// zeros, stored in O(n·log τ/τ) bits. The vector is partitioned into
// words of τ bits; each word stores only the sorted positions of its
// zeros (log τ bits each in principle; uint16 here, requiring τ ≤ 65536).
// A directory tracks which τ-words still contain at least one set bit.
type Compressed struct {
	n     int
	tau   int
	words [][]uint16 // zero positions within each τ-word, sorted
	dir   *bitsucc.Set
	zeros int
}

// NewCompressed creates a Compressed vector of n one-bits with word size τ.
func NewCompressed(n, tau int) *Compressed {
	if n < 0 {
		panic("sparsebits: negative length")
	}
	if tau < 1 || tau > 1<<16 {
		panic(fmt.Sprintf("sparsebits: tau %d out of range [1,65536]", tau))
	}
	nw := (n + tau - 1) / tau
	c := &Compressed{n: n, tau: tau, words: make([][]uint16, nw), dir: bitsucc.New(nw)}
	for i := 0; i < nw; i++ {
		c.dir.Add(i)
	}
	return c
}

// Len reports the number of bits.
func (c *Compressed) Len() int { return c.n }

// Zeros reports how many bits have been cleared.
func (c *Compressed) Zeros() int { return c.zeros }

// Tau reports the word size τ.
func (c *Compressed) Tau() int { return c.tau }

// wordLen reports the number of bits in word w (the last word may be short).
func (c *Compressed) wordLen(w int) int {
	if (w+1)*c.tau <= c.n {
		return c.tau
	}
	return c.n - w*c.tau
}

// Get reports the bit at position i.
func (c *Compressed) Get(i int) bool {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("sparsebits: Get(%d) out of range [0,%d)", i, c.n))
	}
	w, off := i/c.tau, uint16(i%c.tau)
	for _, z := range c.words[w] {
		if z == off {
			return false
		}
		if z > off {
			break
		}
	}
	return true
}

// Zero clears bit i. Clearing an already-cleared bit is a no-op.
func (c *Compressed) Zero(i int) {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("sparsebits: Zero(%d) out of range [0,%d)", i, c.n))
	}
	w, off := i/c.tau, uint16(i%c.tau)
	zs := c.words[w]
	// Insert off into the sorted list if absent.
	lo := sortedSearch(zs, int(off))
	if lo < len(zs) && zs[lo] == off {
		return
	}
	zs = append(zs, 0)
	copy(zs[lo+1:], zs[lo:])
	zs[lo] = off
	c.words[w] = zs
	c.zeros++
	if len(zs) == c.wordLen(w) {
		c.dir.Remove(w)
	}
}

// Report calls fn for every set bit position in [s, e] in increasing order.
// If fn returns false, reporting stops.
func (c *Compressed) Report(s, e int, fn func(pos int) bool) {
	if s < 0 {
		s = 0
	}
	if e >= c.n {
		e = c.n - 1
	}
	if s > e {
		return
	}
	ws, we := s/c.tau, e/c.tau
	w := c.dir.Next(ws)
	for w >= 0 && w <= we {
		base := w * c.tau
		zs := c.words[w]
		zi := 0
		lo, hi := 0, c.wordLen(w)-1
		if w == ws {
			lo = s - base
		}
		if w == we {
			hi = e - base
		}
		// Advance zi to the first zero ≥ lo.
		for zi < len(zs) && int(zs[zi]) < lo {
			zi++
		}
		for pos := lo; pos <= hi; pos++ {
			if zi < len(zs) && int(zs[zi]) == pos {
				zi++
				continue
			}
			if !fn(base + pos) {
				return
			}
		}
		w = c.dir.Next(w + 1)
	}
}

// Count1 returns the number of set bits in [s, e]. Unlike counting via
// Report, it works per τ-word — span length minus the zeros falling in
// the span, found by two binary searches in the word's sorted zero
// list — so the cost is O(words touched · log τ) instead of O(bits),
// and no callback is involved.
func (c *Compressed) Count1(s, e int) int {
	if s < 0 {
		s = 0
	}
	if e >= c.n {
		e = c.n - 1
	}
	if s > e {
		return 0
	}
	ws, we := s/c.tau, e/c.tau
	n := 0
	w := c.dir.Next(ws)
	for w >= 0 && w <= we {
		base := w * c.tau
		lo, hi := 0, c.wordLen(w)-1
		if w == ws {
			lo = s - base
		}
		if w == we {
			hi = e - base
		}
		if hi >= lo {
			zs := c.words[w]
			// Zeros in [lo, hi]: first zero ≥ lo to first zero > hi.
			zlo := sortedSearch(zs, lo)
			zhi := sortedSearch(zs, hi+1)
			n += (hi - lo + 1) - (zhi - zlo)
		}
		w = c.dir.Next(w + 1)
	}
	return n
}

// sortedSearch returns the index of the first element of zs that is
// ≥ v (a closure-free sort.Search).
func sortedSearch(zs []uint16, v int) int {
	lo, hi := 0, len(zs)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(zs[mid]) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AppendRange appends all set positions in [s, e] to dst and returns it.
func (c *Compressed) AppendRange(dst []int, s, e int) []int {
	c.Report(s, e, func(pos int) bool {
		dst = append(dst, pos)
		return true
	})
	return dst
}

// SizeBits estimates the memory footprint in bits.
func (c *Compressed) SizeBits() int64 {
	var n int64
	for _, zs := range c.words {
		n += int64(len(zs)) * 16
	}
	// Slice headers count as directory overhead in this estimate.
	n += int64(len(c.words)) * 64
	return n + c.dir.SizeBits()
}
