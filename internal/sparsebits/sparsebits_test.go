package sparsebits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// reporter is the common interface of Dense and Compressed, used to share
// test drivers.
type reporter interface {
	Len() int
	Zeros() int
	Get(i int) bool
	Zero(i int)
	AppendRange(dst []int, s, e int) []int
}

// refVec is the reference model.
type refVec []bool

func newRef(n int) refVec {
	r := make(refVec, n)
	for i := range r {
		r[i] = true
	}
	return r
}

func (r refVec) report(s, e int) []int {
	var out []int
	if s < 0 {
		s = 0
	}
	if e >= len(r) {
		e = len(r) - 1
	}
	for i := s; i <= e; i++ {
		if r[i] {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func driveAgainstModel(t *testing.T, name string, mk func(n int) reporter) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 63, 64, 65, 100, 1000, 5000} {
		v := mk(n)
		ref := newRef(n)
		zeroed := 0
		for op := 0; op < 2000; op++ {
			switch rng.Intn(3) {
			case 0:
				i := rng.Intn(n)
				v.Zero(i)
				if ref[i] {
					zeroed++
				}
				ref[i] = false
				if v.Zeros() != zeroed {
					t.Fatalf("%s n=%d: Zeros=%d, want %d", name, n, v.Zeros(), zeroed)
				}
			case 1:
				i := rng.Intn(n)
				if v.Get(i) != ref[i] {
					t.Fatalf("%s n=%d: Get(%d)=%v, want %v", name, n, i, v.Get(i), ref[i])
				}
			case 2:
				s, e := rng.Intn(n), rng.Intn(n)
				if s > e {
					s, e = e, s
				}
				got := v.AppendRange(nil, s, e)
				want := ref.report(s, e)
				if !equalInts(got, want) {
					t.Fatalf("%s n=%d: Report(%d,%d)=%v, want %v", name, n, s, e, got, want)
				}
			}
		}
	}
}

func TestDenseAgainstModel(t *testing.T) {
	driveAgainstModel(t, "Dense", func(n int) reporter { return NewDense(n) })
}

func TestCompressedAgainstModel(t *testing.T) {
	for _, tau := range []int{1, 2, 7, 16, 64, 256} {
		tau := tau
		driveAgainstModel(t, "Compressed", func(n int) reporter { return NewCompressed(n, tau) })
	}
}

func TestDenseAllOnesInitially(t *testing.T) {
	d := NewDense(130)
	got := d.AppendRange(nil, 0, 129)
	if len(got) != 130 {
		t.Fatalf("fresh Dense reported %d positions, want 130", len(got))
	}
	for i, p := range got {
		if p != i {
			t.Fatalf("position %d: got %d", i, p)
		}
	}
}

func TestDenseZeroEverything(t *testing.T) {
	d := NewDense(200)
	for i := 0; i < 200; i++ {
		d.Zero(i)
	}
	if d.Zeros() != 200 {
		t.Fatalf("Zeros=%d, want 200", d.Zeros())
	}
	if got := d.AppendRange(nil, 0, 199); len(got) != 0 {
		t.Fatalf("fully-zeroed Dense reported %v", got)
	}
	// Idempotent re-zeroing.
	d.Zero(5)
	if d.Zeros() != 200 {
		t.Fatal("re-zero changed count")
	}
}

func TestCompressedZeroEverything(t *testing.T) {
	c := NewCompressed(200, 16)
	for i := 199; i >= 0; i-- { // reverse order stresses sorted insertion
		c.Zero(i)
	}
	if c.Zeros() != 200 {
		t.Fatalf("Zeros=%d, want 200", c.Zeros())
	}
	if got := c.AppendRange(nil, 0, 199); len(got) != 0 {
		t.Fatalf("fully-zeroed Compressed reported %v", got)
	}
}

func TestReportEarlyStop(t *testing.T) {
	d := NewDense(100)
	var seen []int
	d.Report(0, 99, func(pos int) bool {
		seen = append(seen, pos)
		return len(seen) < 5
	})
	if len(seen) != 5 || seen[4] != 4 {
		t.Fatalf("early stop collected %v", seen)
	}
	c := NewCompressed(100, 8)
	seen = nil
	c.Report(10, 99, func(pos int) bool {
		seen = append(seen, pos)
		return len(seen) < 5
	})
	if len(seen) != 5 || seen[0] != 10 || seen[4] != 14 {
		t.Fatalf("compressed early stop collected %v", seen)
	}
}

func TestReportRangeClamping(t *testing.T) {
	d := NewDense(10)
	if got := d.AppendRange(nil, -5, 100); len(got) != 10 {
		t.Fatalf("clamped report got %v", got)
	}
	if got := d.AppendRange(nil, 7, 3); len(got) != 0 {
		t.Fatalf("inverted range reported %v", got)
	}
	c := NewCompressed(10, 4)
	if got := c.AppendRange(nil, -5, 100); len(got) != 10 {
		t.Fatalf("clamped compressed report got %v", got)
	}
}

func TestCompressedSpaceShrinksWithTau(t *testing.T) {
	// With few zeros, a larger τ must yield a smaller footprint: this is
	// the O(n log τ/τ) claim of Lemma 3 made measurable.
	n := 1 << 16
	rng := rand.New(rand.NewSource(3))
	sizeAt := func(tau int) int64 {
		c := NewCompressed(n, tau)
		for i := 0; i < n/64; i++ {
			c.Zero(rng.Intn(n))
		}
		return c.SizeBits()
	}
	s16, s256, s4096 := sizeAt(16), sizeAt(256), sizeAt(4096)
	if !(s16 > s256 && s256 > s4096) {
		t.Fatalf("space not decreasing with tau: %d, %d, %d", s16, s256, s4096)
	}
	d := NewDense(n)
	if s4096 >= d.SizeBits() {
		t.Fatalf("compressed (tau=4096) %d bits not below dense %d bits", s4096, d.SizeBits())
	}
}

func TestQuickDenseVsCompressed(t *testing.T) {
	// Property: Dense and Compressed must agree on every query after the
	// same sequence of Zero operations.
	f := func(seed int64, nRaw uint16, tauRaw uint8) bool {
		n := int(nRaw)%4000 + 1
		tau := int(tauRaw)%255 + 2
		rng := rand.New(rand.NewSource(seed))
		d := NewDense(n)
		c := NewCompressed(n, tau)
		for i := 0; i < n/2; i++ {
			x := rng.Intn(n)
			d.Zero(x)
			c.Zero(x)
		}
		s, e := rng.Intn(n), rng.Intn(n)
		if s > e {
			s, e = e, s
		}
		return equalInts(d.AppendRange(nil, s, e), c.AppendRange(nil, s, e))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDenseZero(b *testing.B) {
	d := NewDense(1 << 20)
	rng := rand.New(rand.NewSource(9))
	xs := make([]int, 4096)
	for i := range xs {
		xs[i] = rng.Intn(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Zero(xs[i&4095])
	}
}

func BenchmarkDenseReport(b *testing.B) {
	d := NewDense(1 << 20)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 1<<14; i++ {
		d.Zero(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	var sink []int
	for i := 0; i < b.N; i++ {
		s := rng.Intn(1<<20 - 1024)
		sink = d.AppendRange(sink[:0], s, s+1023)
	}
	_ = sink
}

func BenchmarkCompressedReport(b *testing.B) {
	c := NewCompressed(1<<20, 64)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 1<<14; i++ {
		c.Zero(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	var sink []int
	for i := 0; i < b.N; i++ {
		s := rng.Intn(1<<20 - 1024)
		sink = c.AppendRange(sink[:0], s, s+1023)
	}
	_ = sink
}
