package sparsebits

import "testing"

func TestDenseAccessors(t *testing.T) {
	d := NewDense(130)
	if d.Len() != 130 || d.Zeros() != 0 {
		t.Fatalf("Len=%d Zeros=%d", d.Len(), d.Zeros())
	}
	d.Zero(0)
	d.Zero(129)
	d.Zero(64)
	if d.Get(0) || d.Get(64) || d.Get(129) || !d.Get(1) {
		t.Fatal("Get wrong after Zero")
	}
	if d.Zeros() != 3 {
		t.Fatalf("Zeros = %d", d.Zeros())
	}
	// Zero is idempotent.
	d.Zero(64)
	if d.Zeros() != 3 {
		t.Fatalf("Zeros after repeat = %d", d.Zeros())
	}
	if d.SizeBits() <= 0 {
		t.Fatal("SizeBits not positive")
	}
}

func TestCompressedAccessors(t *testing.T) {
	c := NewCompressed(500, 8)
	if c.Len() != 500 || c.Tau() != 8 || c.Zeros() != 0 {
		t.Fatalf("accessors wrong: %d %d %d", c.Len(), c.Tau(), c.Zeros())
	}
	for _, i := range []int{0, 7, 8, 255, 499} {
		c.Zero(i)
		if c.Get(i) {
			t.Fatalf("Get(%d) still true", i)
		}
	}
	if c.Zeros() != 5 {
		t.Fatalf("Zeros = %d", c.Zeros())
	}
	c.Zero(7) // idempotent
	if c.Zeros() != 5 {
		t.Fatalf("Zeros after repeat = %d", c.Zeros())
	}
	// AppendRange over the whole vector skips zeros.
	got := c.AppendRange(nil, 0, 499)
	if len(got) != 495 {
		t.Fatalf("AppendRange returned %d positions", len(got))
	}
}

func TestCompressedZeroLength(t *testing.T) {
	c := NewCompressed(0, 4)
	if c.Len() != 0 {
		t.Fatal("Len != 0")
	}
	c.Report(0, -1, func(int) bool {
		t.Fatal("Report on empty vector visited something")
		return false
	})
}

func TestDenseSingleBit(t *testing.T) {
	d := NewDense(1)
	seen := 0
	d.Report(0, 0, func(pos int) bool {
		if pos != 0 {
			t.Fatalf("pos = %d", pos)
		}
		seen++
		return true
	})
	if seen != 1 {
		t.Fatal("single live bit not reported")
	}
	d.Zero(0)
	d.Report(0, 0, func(int) bool {
		t.Fatal("dead bit reported")
		return false
	})
}
