package query

import (
	"slices"

	"dyncoll/internal/core"
)

// Source is the slice of a document store the single-level executor
// queries: pattern enumeration, pattern counting, and random-access
// extraction. The core transformations satisfy it directly; the facade
// adapts anything else.
type Source interface {
	// FindFunc streams occurrences of pattern in unspecified order;
	// enumeration stops when fn returns false.
	FindFunc(pattern []byte, fn func(core.Occurrence) bool)
	// FindGroupedFunc streams occurrences grouped by document, offsets
	// ascending within each document, each document's group contiguous
	// (the position-ordered enumeration ranked plans aggregate over).
	FindGroupedFunc(pattern []byte, fn func(core.Occurrence) bool)
	Count(pattern []byte) int
	Extract(id uint64, off, length int) ([]byte, bool)
	DocLen(id uint64) (int, bool)
	DocIDs() []uint64
	DocCount() int
	Len() int
}

// Executor runs a compiled plan at one level of the serving hierarchy,
// emitting matches until the plan is exhausted or emit returns false.
// Ranked plans emit documents best-first; streaming plans emit
// occurrences in unspecified order. Execute itself enforces the plan's
// k-bound, so callers see at most k matches from any level.
//
// Implementations: Single (one ladder), the sharded structure in the
// facade package (fan-out over per-shard Singles), and the dyndocd
// frontend (fan-out over per-backend /v1/search streams).
type Executor interface {
	Execute(p *Plan, emit func(Match) bool) error
}

// Single executes plans against one Source.
type Single struct{ src Source }

// Over returns the single-level executor for src.
func Over(src Source) Single { return Single{src: src} }

// Collect runs p against src and returns the emitted matches — for a
// ranked plan, the level's exact local top-k list in emission order,
// the unit the shard and fleet layers merge with MergeRanked.
func Collect(src Source, p *Plan) []Match {
	var out []Match
	Over(src).Execute(p, func(m Match) bool {
		out = append(out, m)
		return true
	})
	return out
}

// Execute implements Executor. It never fails on a compiled plan; the
// error return exists for the networked executors sharing the
// interface.
func (e Single) Execute(p *Plan, emit func(Match) bool) error {
	switch {
	case !p.Regex() && !p.Ranked():
		e.exactStream(p, emit)
	case !p.Regex():
		e.exactRanked(p, emit)
	case !p.Ranked():
		e.regexStream(p, emit)
	default:
		e.regexRanked(p, emit)
	}
	return nil
}

// limited bounds a streaming emit at the plan's k (0 = unlimited); the
// early break propagates into the underlying enumeration.
func limited(k int, emit func(Match) bool) func(Match) bool {
	if k <= 0 {
		return emit
	}
	n := 0
	return func(m Match) bool {
		if !emit(m) {
			return false
		}
		n++
		return n < k
	}
}

// exactStream is the classic workload: every occurrence of the pattern.
func (e Single) exactStream(p *Plan, emit func(Match) bool) {
	fn := limited(p.K(), emit)
	e.src.FindFunc(p.pattern, func(o core.Occurrence) bool {
		return fn(Match{Doc: o.DocID, Off: o.Off, Len: len(p.pattern)})
	})
}

// exactRanked aggregates the grouped enumeration per document — match
// count and earliest offset are exactly what the scorer needs, and the
// grouped order delivers both in O(1) state per document. Scoring
// (which reads DocLen) runs only after the enumeration completes:
// re-entering the source from inside its own callback deadlocks the
// worst-case engine, whose view holds the internal lock while yielding.
func (e Single) exactRanked(p *Plan, emit func(Match) bool) {
	type docAgg struct {
		doc      uint64
		count    int
		firstOff int
	}
	var aggs []docAgg
	e.src.FindGroupedFunc(p.pattern, func(o core.Occurrence) bool {
		if n := len(aggs); n > 0 && aggs[n-1].doc == o.DocID {
			aggs[n-1].count++
			return true
		}
		aggs = append(aggs, docAgg{doc: o.DocID, count: 1, firstOff: o.Off})
		return true
	})
	top := NewTopK(p.K())
	for _, a := range aggs {
		n, _ := e.src.DocLen(a.doc)
		top.Add(Match{
			Doc:   a.doc,
			Off:   a.firstOff,
			Len:   len(p.pattern),
			Score: Score(n, a.count, a.firstOff),
		})
	}
	emitSorted(top, emit)
}

// regexStream verifies candidate documents (docs sorted ascending, for
// deterministic output) with the compiled regexp and emits every match.
func (e Single) regexStream(p *Plan, emit func(Match) bool) {
	fn := limited(p.K(), emit)
	for _, id := range e.candidateDocs(p) {
		text, ok := e.docText(id)
		if !ok {
			continue
		}
		for _, loc := range p.re.FindAllIndex(text, -1) {
			if !fn(Match{Doc: id, Off: loc[0], Len: loc[1] - loc[0]}) {
				return
			}
		}
	}
}

// regexRanked scores each verified candidate document as a whole.
func (e Single) regexRanked(p *Plan, emit func(Match) bool) {
	top := NewTopK(p.K())
	for _, id := range e.candidateDocs(p) {
		text, ok := e.docText(id)
		if !ok {
			continue
		}
		locs := p.re.FindAllIndex(text, -1)
		if len(locs) == 0 {
			continue
		}
		top.Add(Match{
			Doc:   id,
			Off:   locs[0][0],
			Len:   locs[0][1] - locs[0][0],
			Score: Score(len(text), len(locs), locs[0][0]),
		})
	}
	emitSorted(top, emit)
}

func emitSorted(top *TopK, emit func(Match) bool) {
	for _, m := range top.Sorted() {
		if !emit(m) {
			return
		}
	}
}

// docText extracts a document's full payload for verification. A
// failed extract means the document vanished between enumeration and
// verification (possible only through a caller-level race; the shard
// layer holds its read lock across Execute) — skipping it is the same
// outcome as running a moment earlier.
func (e Single) docText(id uint64) ([]byte, bool) {
	n, ok := e.src.DocLen(id)
	if !ok {
		return nil, false
	}
	return e.src.Extract(id, 0, n)
}

// candidateDocs returns the ascending list of documents a regex plan
// must verify. With required literals it is index-filtered: every match
// contains at least one literal of each group, so documents containing
// no literal of some group are skipped without verification. Without
// usable literals — or when the cheapest group is so common that
// filtering would enumerate a constant fraction of the corpus anyway —
// it degrades to every live document (the scan fallback).
func (e Single) candidateDocs(p *Plan) []uint64 {
	if p.Regex() && !p.scan {
		if docs, ok := e.filterDocs(p.groups); ok {
			return docs
		}
	}
	docs := e.src.DocIDs()
	slices.Sort(docs)
	return docs
}

// filterDocs runs the literal filter; ok is false when the index
// suggests scanning is cheaper.
func (e Single) filterDocs(groups [][][]byte) ([]uint64, bool) {
	// Count every group first: occurrence totals order the groups by
	// selectivity, and any all-zero group proves there are no matches.
	totals := make([]int, len(groups))
	order := make([]int, len(groups))
	for i, g := range groups {
		for _, lit := range g {
			totals[i] += e.src.Count(lit)
		}
		if totals[i] == 0 {
			return nil, true
		}
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int { return totals[a] - totals[b] })

	// If even the most selective group matches a constant fraction of
	// the corpus, enumerating its occurrences costs as much as scanning.
	if cheap := totals[order[0]]; cheap*4 > e.src.Len() {
		return nil, false
	}

	cands := e.groupDocs(groups[order[0]])
	for _, gi := range order[1:] {
		// Intersecting with a further group is worth an index walk only
		// while its occurrence list is comparable to the surviving
		// candidate set; skipping the intersection is always sound.
		if len(cands) == 0 || totals[gi] > 4*len(cands)+256 {
			break
		}
		other := e.groupDocs(groups[gi])
		for id := range cands {
			if _, ok := other[id]; !ok {
				delete(cands, id)
			}
		}
	}

	docs := make([]uint64, 0, len(cands))
	for id := range cands {
		docs = append(docs, id)
	}
	slices.Sort(docs)
	return docs, true
}

// groupDocs is the set of documents containing at least one of the
// group's literals.
func (e Single) groupDocs(group [][]byte) map[uint64]struct{} {
	set := make(map[uint64]struct{})
	for _, lit := range group {
		e.src.FindFunc(lit, func(o core.Occurrence) bool {
			set[o.DocID] = struct{}{}
			return true
		})
	}
	return set
}
