package query

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"regexp"
	"slices"
	"testing"

	"dyncoll/internal/core"
)

// fakeSource is a naive reference Source over an in-memory doc map —
// brute-force substring scans, no index — so executor behavior can be
// checked without dragging the whole engine in.
type fakeSource struct {
	ids  []uint64 // insertion order
	docs map[uint64][]byte
}

func newFakeSource(docs map[uint64][]byte) *fakeSource {
	f := &fakeSource{docs: docs}
	for id := range docs {
		f.ids = append(f.ids, id)
	}
	slices.Sort(f.ids)
	return f
}

func (f *fakeSource) FindFunc(pattern []byte, fn func(core.Occurrence) bool) {
	for _, id := range f.ids {
		d := f.docs[id]
		if len(pattern) == 0 {
			for off := range d {
				if !fn(core.Occurrence{DocID: id, Off: off}) {
					return
				}
			}
			continue
		}
		for off := 0; off+len(pattern) <= len(d); off++ {
			if bytes.Equal(d[off:off+len(pattern)], pattern) {
				if !fn(core.Occurrence{DocID: id, Off: off}) {
					return
				}
			}
		}
	}
}

func (f *fakeSource) FindGroupedFunc(pattern []byte, fn func(core.Occurrence) bool) {
	f.FindFunc(pattern, fn) // already grouped: per-doc, offsets ascending
}

func (f *fakeSource) Count(pattern []byte) int {
	n := 0
	f.FindFunc(pattern, func(core.Occurrence) bool { n++; return true })
	return n
}

func (f *fakeSource) Extract(id uint64, off, length int) ([]byte, bool) {
	d, ok := f.docs[id]
	if !ok || off < 0 || off+length > len(d) {
		return nil, false
	}
	return d[off : off+length], true
}

func (f *fakeSource) DocLen(id uint64) (int, bool) {
	d, ok := f.docs[id]
	return len(d), ok
}

func (f *fakeSource) DocIDs() []uint64 { return slices.Clone(f.ids) }
func (f *fakeSource) DocCount() int    { return len(f.ids) }
func (f *fakeSource) Len() int {
	n := 0
	for _, d := range f.docs {
		n += len(d)
	}
	return n
}

func TestCompileErrors(t *testing.T) {
	for _, spec := range []Spec{
		{Pattern: "a", K: -1},
		{Pattern: "a(", Regex: true},
		{Pattern: "a[", Regex: true},
	} {
		if _, err := Compile(spec); !errors.Is(err, ErrBadPlan) {
			t.Errorf("Compile(%+v) = %v, want ErrBadPlan", spec, err)
		}
	}
	if _, err := Compile(Spec{Pattern: "ab", K: 3, Ranked: true}); err != nil {
		t.Fatalf("Compile: %v", err)
	}
}

func TestPatternBytes(t *testing.T) {
	if got := (Spec{Pattern: "abc"}).PatternBytes(); !bytes.Equal(got, []byte("abc")) {
		t.Errorf("PatternBytes = %q", got)
	}
	// PatternB wins over Pattern.
	s := Spec{Pattern: "abc", PatternB: []byte{0xff, 0x01}}
	if got := s.PatternBytes(); !bytes.Equal(got, []byte{0xff, 0x01}) {
		t.Errorf("PatternBytes = %q", got)
	}
}

// TestLiteralGroups pins the required-literal analysis: for each
// expression, the expected conjunction-of-disjunctions (group order and
// in-group order are implementation details, so comparisons sort).
func TestLiteralGroups(t *testing.T) {
	cases := []struct {
		expr string
		want [][]string // nil = scan fallback
	}{
		{`abc`, [][]string{{"abc"}}},
		{`abc.*def`, [][]string{{"abc"}, {"def"}}},
		{`abc|def`, [][]string{{"abc", "def"}}},
		{`(abc|def)xyz`, [][]string{{"abc", "def"}, {"xyz"}}},
		{`a+`, [][]string{{"a"}}},
		{`(abc)+`, [][]string{{"abc"}}},
		{`abc{2,}`, [][]string{{"ab"}, {"c"}, {"c"}}}, // Simplify: ab·c·c+
		{`[ab]c`, [][]string{{"a", "b"}, {"c"}}},
		{`a*`, nil},                 // may match empty
		{`.*`, nil},                 // any text
		{`a|b*`, nil},               // one branch may match empty
		{`(?i)abc`, nil},            // case fold: many byte strings
		{`[a-z]`, nil},              // class too wide
		{`^$`, nil},                 // anchors only
		{`\d+x`, [][]string{{"x"}}}, // \d: 10 alternatives > cap, dropped
		{`[01]+x`, [][]string{{"0", "1"}, {"x"}}},
	}
	for _, c := range cases {
		p, err := Compile(Spec{Pattern: c.expr, Regex: true})
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.expr, err)
		}
		var got [][]string
		for _, g := range p.LiteralGroups() {
			var alts []string
			for _, lit := range g {
				alts = append(alts, string(lit))
			}
			slices.Sort(alts)
			got = append(got, alts)
		}
		want := c.want
		for _, g := range want {
			slices.Sort(g)
		}
		sortKey := func(g []string) string { return fmt.Sprint(g) }
		slices.SortFunc(got, func(a, b []string) int { return bytes.Compare([]byte(sortKey(a)), []byte(sortKey(b))) })
		slices.SortFunc(want, func(a, b []string) int { return bytes.Compare([]byte(sortKey(a)), []byte(sortKey(b))) })
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("literalGroups(%q) = %v, want %v", c.expr, got, want)
		}
		if (len(c.want) == 0) != p.ScanFallback() {
			t.Errorf("ScanFallback(%q) = %v, want %v", c.expr, p.ScanFallback(), len(c.want) == 0)
		}
	}
}

// TestLiteralGroupsRequired is the soundness property the fuzz test
// also asserts: every string matching the regex contains at least one
// literal of every group.
func TestLiteralGroupsRequired(t *testing.T) {
	exprs := []string{
		`abc.*def`, `(foo|bar)baz`, `a[xy]b`, `(ab)+c`, `x{3,5}y`,
		`hello|wor.d`, `a.b.c`, `[01]{2}z`,
	}
	inputs := []string{
		"abcdef", "fooXbaz", "barbaz", "axbayb", "ababc", "xxxy", "xxxxxy",
		"hello world", "aXbYc", "0101z", "01z", "abc def abc", "zzzz",
	}
	for _, expr := range exprs {
		p, err := Compile(Spec{Pattern: expr, Regex: true})
		if err != nil {
			t.Fatalf("Compile(%q): %v", expr, err)
		}
		re := regexp.MustCompile(expr)
		for _, in := range inputs {
			if !re.MatchString(in) {
				continue
			}
			for _, g := range p.LiteralGroups() {
				found := false
				for _, lit := range g {
					if bytes.Contains([]byte(in), lit) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%q matches %q but contains no literal of group %q", in, expr, g)
				}
			}
		}
	}
}

func TestScoreRange(t *testing.T) {
	if Score(100, 0, 0) != 0 {
		t.Error("zero matches must score zero")
	}
	for _, c := range []struct{ dl, m, off int }{
		{1, 1, 0}, {100, 5, 10}, {1 << 20, 1000, 1 << 19}, {64, countCap * 10, 63},
	} {
		s := Score(c.dl, c.m, c.off)
		if s <= 0 || s > 1 {
			t.Errorf("Score(%d,%d,%d) = %v out of (0,1]", c.dl, c.m, c.off, s)
		}
	}
	// More matches never score lower, all else equal.
	if Score(100, 2, 5) <= Score(100, 1, 5) {
		t.Error("match count should increase score")
	}
	// Earlier first match never scores lower, all else equal.
	if Score(100, 3, 0) <= Score(100, 3, 50) {
		t.Error("earlier match should increase score")
	}
	// Shorter doc never scores lower, all else equal.
	if Score(100, 3, 5) <= Score(100000, 3, 5) {
		t.Error("shorter doc should increase score")
	}
}

// TestTopK compares the bounded heap against sort-everything for random
// inputs, including duplicate scores (the doc-asc tiebreak).
func TestTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		k := rng.Intn(20)
		all := make([]Match, n)
		for i := range all {
			all[i] = Match{Doc: uint64(rng.Intn(50)), Score: float64(rng.Intn(8)) / 8}
		}
		top := NewTopK(k)
		for _, m := range all {
			top.Add(m)
		}
		got := top.Sorted()

		want := slices.Clone(all)
		slices.SortStableFunc(want, func(a, b Match) int {
			if less(a, b) {
				return -1
			}
			if less(b, a) {
				return 1
			}
			return 0
		})
		if k > 0 && len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d matches, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Score != want[i].Score {
				t.Fatalf("trial %d pos %d: score %v, want %v", trial, i, got[i].Score, want[i].Score)
			}
		}
	}
}

// TestMergeRanked checks the k-way merge against flatten-and-sort.
func TestMergeRanked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nl := 1 + rng.Intn(5)
		k := rng.Intn(15)
		var lists [][]Match
		var all []Match
		doc := uint64(0)
		for i := 0; i < nl; i++ {
			var l []Match
			for j := rng.Intn(10); j > 0; j-- {
				l = append(l, Match{Doc: doc, Score: float64(rng.Intn(10)) / 10})
				doc++
			}
			slices.SortFunc(l, func(a, b Match) int {
				if less(a, b) {
					return -1
				}
				return 1
			})
			lists = append(lists, l)
			all = append(all, l...)
		}
		var got []Match
		MergeRanked(lists, k, func(m Match) bool { got = append(got, m); return true })

		slices.SortFunc(all, func(a, b Match) int {
			if less(a, b) {
				return -1
			}
			if less(b, a) {
				return 1
			}
			return 0
		})
		want := all
		if k > 0 && len(want) > k {
			want = want[:k]
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: merge = %v, want %v", trial, got, want)
		}
	}
}

// TestExecExact checks the streaming and ranked exact paths over the
// fake source.
func TestExecExact(t *testing.T) {
	src := newFakeSource(map[uint64][]byte{
		1: []byte("banana"),        // "an" ×2, first at 1
		2: []byte("an an an an a"), // "an" ×4, first at 0
		3: []byte("nothing here"),
		4: []byte("ancient"), // "an" ×1 at 0
	})

	p, err := Compile(Spec{Pattern: "an"})
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(src, p)
	if len(got) != 7 {
		t.Fatalf("streaming: %d matches, want 7", len(got))
	}
	for _, m := range got {
		if m.Len != 2 || m.Score != 0 {
			t.Fatalf("streaming match %+v: want Len=2 Score=0", m)
		}
	}

	// k-bound.
	p, _ = Compile(Spec{Pattern: "an", K: 3})
	if got := Collect(src, p); len(got) != 3 {
		t.Fatalf("limited: %d matches, want 3", len(got))
	}

	// Ranked: doc 2 (4 matches, offset 0, shortest-ish) must beat doc 1
	// (2 matches at offset 1); every matching doc appears once.
	p, _ = Compile(Spec{Pattern: "an", Ranked: true, K: 10})
	ranked := Collect(src, p)
	if len(ranked) != 3 {
		t.Fatalf("ranked: %d docs, want 3", len(ranked))
	}
	if ranked[0].Doc != 2 {
		t.Errorf("ranked[0].Doc = %d, want 2", ranked[0].Doc)
	}
	for i := 1; i < len(ranked); i++ {
		if less(ranked[i], ranked[i-1]) {
			t.Errorf("ranked output out of order at %d: %v after %v", i, ranked[i], ranked[i-1])
		}
	}

	// k=1 keeps only the best.
	p, _ = Compile(Spec{Pattern: "an", Ranked: true, K: 1})
	if got := Collect(src, p); len(got) != 1 || got[0].Doc != 2 {
		t.Errorf("ranked k=1 = %v, want doc 2 only", got)
	}
}

// TestExecRegex checks the regex paths — filtered and scan-fallback —
// against direct regexp evaluation.
func TestExecRegex(t *testing.T) {
	docs := map[uint64][]byte{
		10: []byte("the quick brown fox"),
		11: []byte("jumped over the lazy dog"),
		12: []byte("quick quack quock"),
		13: []byte("xxxxxxxxxxxxxxxxxxxx"),
	}
	src := newFakeSource(docs)
	for _, expr := range []string{
		`qu.ck`,   // literal-filtered
		`the|dog`, // alternation group
		`q.*k`,    // literal "q" and "k" groups
		`[a-z]+`,  // scan fallback (wide class)
		`^the`,    // anchored: doc-boundary semantics
		`x{5}`,
	} {
		re := regexp.MustCompile(expr)
		var want []Match
		for _, id := range src.DocIDs() {
			for _, loc := range re.FindAllIndex(docs[id], -1) {
				want = append(want, Match{Doc: id, Off: loc[0], Len: loc[1] - loc[0]})
			}
		}
		p, err := Compile(Spec{Pattern: expr, Regex: true})
		if err != nil {
			t.Fatalf("Compile(%q): %v", expr, err)
		}
		got := Collect(src, p)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%q: got %v, want %v (scan=%v)", expr, got, want, p.ScanFallback())
		}
	}

	// Ranked regex: every matching doc exactly once, best first.
	p, _ := Compile(Spec{Pattern: `qu.ck`, Regex: true, Ranked: true, K: 10})
	ranked := Collect(src, p)
	if len(ranked) != 2 {
		t.Fatalf("ranked regex: %d docs, want 2", len(ranked))
	}
	if ranked[0].Doc != 12 { // 2 matches at offset 0 beats 1 match at offset 4
		t.Errorf("ranked[0].Doc = %d, want 12", ranked[0].Doc)
	}
}

// TestExecRegexNoMatchGroup exercises the zero-total early exit: a
// required literal absent from the corpus proves no match exists.
func TestExecRegexNoMatchGroup(t *testing.T) {
	src := newFakeSource(map[uint64][]byte{1: []byte("aaa bbb ccc")})
	p, err := Compile(Spec{Pattern: `zzz.*aaa`, Regex: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := Collect(src, p); len(got) != 0 {
		t.Errorf("got %v, want none", got)
	}
}
