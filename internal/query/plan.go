// Package query is the module's unified query-execution layer: a Plan
// describes one search request (exact or regex, streaming or ranked
// top-k), compiled once per request, and an Executor runs it at some
// level of the serving hierarchy — a single sub-collection ladder, a
// sharded structure, or a fleet of networked backends.
//
// The same compiled plan executes identically at every level because
// each level is just a union of static sub-collections (the paper's
// transformation argument): a ladder answers a query as the union over
// its levels, a sharded structure as the union over its shards, and a
// backend fleet as the union over its backends. A plan therefore pushes
// down unchanged — the shard layer hands it to per-shard executors, the
// frontend serializes it (Spec is the wire form) and each backend hands
// it to its own sharded executor — and only the merge differs:
// streaming plans merge with propagated early break, ranked plans merge
// per-level top-k lists (ranking is document-local, so top-k commutes
// with union).
package query

import (
	"errors"
	"fmt"
	"regexp"
	"regexp/syntax"
)

// ErrBadPlan reports a plan that cannot be compiled: a malformed regex,
// a negative k, or an empty regex pattern. The facade re-exports it as
// dyncoll.ErrBadPattern.
var ErrBadPlan = errors.New("bad query plan")

// Spec is the serializable description of a search request — the form a
// caller constructs and the form that travels on the wire (the dyndocd
// /v1/search body), so a backend compiles and executes exactly the plan
// the frontend's client asked for.
type Spec struct {
	// Pattern is the exact byte pattern (Regex false) or the regular
	// expression source (Regex true), as a string. JSON strings must be
	// valid UTF-8; use PatternB for arbitrary exact bytes.
	Pattern string `json:"q,omitempty"`
	// PatternB carries arbitrary pattern bytes (base64 on the wire) and
	// takes precedence over Pattern when non-empty.
	PatternB []byte `json:"q64,omitempty"`
	// Regex selects regex search: Pattern is Go regexp syntax, matched
	// per document (anchors ^ and $ bind to document boundaries).
	Regex bool `json:"regex,omitempty"`
	// K bounds the result count: at most K occurrences for a streaming
	// plan, the K best documents for a ranked plan. 0 means unlimited.
	K int `json:"k,omitempty"`
	// Ranked selects the top-k pipeline: results are documents (not
	// occurrences), scored and emitted best-first.
	Ranked bool `json:"ranked,omitempty"`
}

// PatternBytes returns the pattern bytes the spec denotes.
func (s Spec) PatternBytes() []byte {
	if len(s.PatternB) > 0 {
		return s.PatternB
	}
	return []byte(s.Pattern)
}

// Plan is a compiled, immutable, concurrency-safe query plan. Compile
// it once per request; every executor level shares the same instance
// (or, across the wire, an instance recompiled from the same Spec).
type Plan struct {
	spec    Spec
	pattern []byte // exact pattern bytes (Regex false)

	// Regex plans.
	re     *regexp.Regexp
	groups [][][]byte // required-literal groups, see regex.go
	scan   bool       // no usable literal: verify every document
}

// Compile validates a spec and compiles it into an executable plan.
// Regex plans parse the expression twice — once through regexp for the
// verification engine, once through regexp/syntax for the required-
// literal analysis that drives index-assisted candidate filtering.
func Compile(s Spec) (*Plan, error) {
	if s.K < 0 {
		return nil, fmt.Errorf("query: %w: negative k %d", ErrBadPlan, s.K)
	}
	p := &Plan{spec: s, pattern: s.PatternBytes()}
	if !s.Regex {
		return p, nil
	}
	expr := string(p.pattern)
	re, err := regexp.Compile(expr)
	if err != nil {
		return nil, fmt.Errorf("query: %w: %v", ErrBadPlan, err)
	}
	p.re = re
	// The syntax tree cannot fail to parse after regexp.Compile
	// succeeded; Simplify normalizes x{2,} style repetitions so the
	// literal analysis sees plain concatenations.
	tree, err := syntax.Parse(expr, syntax.Perl)
	if err != nil {
		return nil, fmt.Errorf("query: %w: %v", ErrBadPlan, err)
	}
	p.groups = literalGroups(tree.Simplify())
	p.scan = len(p.groups) == 0
	return p, nil
}

// Spec returns the serializable form the plan was compiled from.
func (p *Plan) Spec() Spec { return p.spec }

// Regex reports whether this is a regex plan.
func (p *Plan) Regex() bool { return p.spec.Regex }

// Ranked reports whether this is a ranked top-k plan.
func (p *Plan) Ranked() bool { return p.spec.Ranked }

// K returns the result bound (0 = unlimited).
func (p *Plan) K() int { return p.spec.K }

// ScanFallback reports whether the regex planner found no required
// literal, so execution verifies every document instead of filtering
// candidates through the index. Always false for exact plans.
func (p *Plan) ScanFallback() bool { return p.scan }

// LiteralGroups exposes the required-literal analysis: every regex
// match contains, for each group, at least one of that group's literals
// as a substring. Nil for exact plans and scan-fallback regex plans.
// The slices are the plan's own — callers must not mutate them.
func (p *Plan) LiteralGroups() [][][]byte { return p.groups }
