package query

import (
	"math"
	"slices"
)

// Ranking: a document's score for a query combines a static prior with
// query-dependent evidence, every component normalized into [0, 1]:
//
//   - match count (weight 0.6): log-saturating at countCap occurrences,
//     so a document with 1000 hits does not drown one with 30;
//   - earliest position (weight 0.25): matches near the start of the
//     document rank higher (title/lead-paragraph prior);
//   - static score (weight 0.15): shorter documents rank higher — the
//     same evidence in less text is a denser signal.
//
// Scores are document-local: they depend only on the document's own
// matches and length, never on corpus statistics. That locality is what
// lets ranked top-k commute with the union over sub-collections — a
// shard's (or backend's) local top-k list is exact for its slice of the
// corpus, so merging per-level lists and keeping the best k is exactly
// the global top-k (see DESIGN.md).

// countCap is where the match-count component saturates.
const countCap = 32

// Score computes the relevance of a document with the given payload
// length, match count, and earliest match offset.
func Score(docLen, matches, firstOff int) float64 {
	if matches <= 0 {
		return 0
	}
	c := matches
	if c > countCap {
		c = countCap
	}
	count := math.Log2(1+float64(c)) / math.Log2(1+countCap)
	early := 1 / (1 + float64(firstOff)/64)
	static := 1 / (1 + math.Log2(1+float64(docLen)/1024))
	return 0.6*count + 0.25*early + 0.15*static
}

// Match is one search result. Streaming plans emit one Match per
// occurrence (Score zero); ranked plans emit one Match per document,
// best score first, with Off/Len describing the document's earliest
// match. The JSON form is the /v1/search NDJSON line.
type Match struct {
	Doc   uint64  `json:"doc"`
	Off   int     `json:"off"`
	Len   int     `json:"len,omitempty"`
	Score float64 `json:"score,omitempty"`
}

// less orders matches for ranked emission: higher score first, document
// ID ascending as the deterministic tiebreak.
func less(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Doc < b.Doc
}

// TopK accumulates the k best matches (k ≤ 0: unbounded — rank
// everything) in a bounded min-heap, so ranking the world costs
// O(docs·log k) comparisons and O(k) memory instead of materializing
// and sorting the world.
type TopK struct {
	k int
	h []Match // min-heap on less (worst survivor at the root)
}

// NewTopK returns an accumulator for the k best matches.
func NewTopK(k int) *TopK { return &TopK{k: k} }

// Add offers one match.
func (t *TopK) Add(m Match) {
	if t.k <= 0 {
		t.h = append(t.h, m)
		return
	}
	if len(t.h) < t.k {
		t.h = append(t.h, m)
		t.up(len(t.h) - 1)
		return
	}
	if !less(m, t.h[0]) {
		return
	}
	t.h[0] = m
	t.down(0)
}

// Threshold returns the score a new match must beat to enter a full
// accumulator, and whether the accumulator is full. Executors use it to
// skip scoring work that cannot change the result.
func (t *TopK) Threshold() (float64, bool) {
	if t.k <= 0 || len(t.h) < t.k {
		return 0, false
	}
	return t.h[0].Score, true
}

// Sorted drains the accumulator: matches in emission order (best
// first). The accumulator must not be reused afterwards.
func (t *TopK) Sorted() []Match {
	slices.SortFunc(t.h, func(a, b Match) int {
		if less(a, b) {
			return -1
		}
		if less(b, a) {
			return 1
		}
		return 0
	})
	return t.h
}

func (t *TopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !less(t.h[p], t.h[i]) { // parent is no better than child: heap ok
			return
		}
		t.h[p], t.h[i] = t.h[i], t.h[p]
		i = p
	}
}

func (t *TopK) down(i int) {
	n := len(t.h)
	for {
		worst := i
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < n && less(t.h[worst], t.h[c]) {
				worst = c
			}
		}
		if worst == i {
			return
		}
		t.h[i], t.h[worst] = t.h[worst], t.h[i]
		i = worst
	}
}

// MergeRanked merges per-level ranked result lists (each sorted best
// first, as Collect produces) and emits the k best overall (k ≤ 0:
// all), stopping early when emit returns false. Because scores are
// document-local and every document lives at exactly one level, the
// merge of exact per-level top-k lists is the exact global top-k.
func MergeRanked(lists [][]Match, k int, emit func(Match) bool) {
	heads := make([]int, len(lists))
	emitted := 0
	for k <= 0 || emitted < k {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || less(l[heads[i]], lists[best][heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		m := lists[best][heads[best]]
		heads[best]++
		if !emit(m) {
			return
		}
		emitted++
	}
}
