package query

import (
	"regexp/syntax"
	"unicode"
	"unicode/utf8"
)

// Required-literal analysis, in the spirit of Debian Code Search's
// query planner: decompose a regex into substrings that every match
// must contain, so the FM-index can filter candidate documents cheaply
// and the regexp engine only verifies documents that can possibly
// match.
//
// The result shape is a conjunction of disjunctions ("groups"): every
// match contains, for EACH group, at least ONE of that group's literals
// as a substring. A concatenation contributes the groups of its parts
// (all apply); an alternation folds its branches into one group (a
// match satisfies some branch, hence contains one of the union's
// literals). Sub-expressions that can match the empty string, case
// folds over letters, and character classes beyond a few runes
// contribute nothing; if nothing survives, the planner falls back to
// verifying every document — correctness never depends on the
// analysis, only performance does.

const (
	// maxGroups bounds the conjunction: more groups than this would
	// spend more time intersecting candidate sets than verification
	// saves. The strongest (longest-literal) groups are kept.
	maxGroups = 3
	// maxAlternatives bounds one group's disjunction; a wider
	// alternation (or a big character class) makes the group useless as
	// a filter, so it is dropped rather than enumerated.
	maxAlternatives = 8
)

// literalGroups runs the analysis over a simplified syntax tree. A nil
// result means no usable literal exists.
func literalGroups(re *syntax.Regexp) [][][]byte {
	groups := analyze(re)
	if len(groups) > maxGroups {
		// Keep the most selective groups: longer minimum literal first.
		sortGroupsByStrength(groups)
		groups = groups[:maxGroups]
	}
	return groups
}

// analyze returns the required-literal groups of one subtree (nil =
// no information).
func analyze(re *syntax.Regexp) [][][]byte {
	switch re.Op {
	case syntax.OpLiteral:
		lit, ok := literalBytes(re)
		if !ok || len(lit) == 0 {
			return nil
		}
		return [][][]byte{{lit}}

	case syntax.OpCharClass:
		alts := classAlternatives(re)
		if alts == nil {
			return nil
		}
		return [][][]byte{alts}

	case syntax.OpConcat:
		// Every part's groups apply to the whole concatenation. Literals
		// spanning part boundaries are not recombined — Simplify already
		// merged adjacent literals, and missing a longer literal only
		// costs selectivity, never correctness.
		var groups [][][]byte
		for _, sub := range re.Sub {
			groups = append(groups, analyze(sub)...)
		}
		return groups

	case syntax.OpAlternate:
		// A match satisfies one branch, so the union of one group per
		// branch is required; every branch must contribute or the
		// alternation yields nothing.
		var union [][]byte
		for _, sub := range re.Sub {
			groups := analyze(sub)
			if len(groups) == 0 {
				return nil
			}
			union = append(union, bestGroup(groups)...)
			if len(union) > maxAlternatives {
				return nil
			}
		}
		return [][][]byte{union}

	case syntax.OpCapture:
		return analyze(re.Sub[0])

	case syntax.OpPlus:
		// x+ contains at least one x.
		return analyze(re.Sub[0])

	case syntax.OpRepeat:
		if re.Min >= 1 {
			return analyze(re.Sub[0])
		}
		return nil

	default:
		// OpStar, OpQuest, OpAnyChar*, anchors, word boundaries,
		// OpEmptyMatch: can match empty or any text — no required
		// literal.
		return nil
	}
}

// literalBytes renders an OpLiteral node as the UTF-8 bytes the regexp
// engine will match. A case-folded literal containing letters matches
// several byte strings, so it is unusable as a single required
// substring.
func literalBytes(re *syntax.Regexp) ([]byte, bool) {
	fold := re.Flags&syntax.FoldCase != 0
	buf := make([]byte, 0, len(re.Rune)*utf8.UTFMax)
	for _, r := range re.Rune {
		if fold && unicode.SimpleFold(r) != r {
			return nil, false
		}
		buf = utf8.AppendRune(buf, r)
	}
	return buf, true
}

// classAlternatives expands a small character class into one literal
// per rune; nil when the class is too wide to filter on.
func classAlternatives(re *syntax.Regexp) [][]byte {
	var alts [][]byte
	for i := 0; i+1 < len(re.Rune); i += 2 {
		lo, hi := re.Rune[i], re.Rune[i+1]
		if hi-lo >= maxAlternatives { // also guards the count below
			return nil
		}
		for r := lo; r <= hi; r++ {
			alts = append(alts, utf8.AppendRune(nil, r))
			if len(alts) > maxAlternatives {
				return nil
			}
		}
	}
	if len(alts) == 0 {
		return nil
	}
	return alts
}

// groupStrength scores a group by its weakest alternative: the filter
// is only as selective as its shortest literal.
func groupStrength(g [][]byte) int {
	s := int(^uint(0) >> 1)
	for _, lit := range g {
		if len(lit) < s {
			s = len(lit)
		}
	}
	return s
}

// bestGroup picks the strongest group of a conjunction.
func bestGroup(groups [][][]byte) [][]byte {
	best := groups[0]
	for _, g := range groups[1:] {
		if groupStrength(g) > groupStrength(best) {
			best = g
		}
	}
	return best
}

// sortGroupsByStrength orders groups descending by strength (insertion
// sort; maxGroups-scale inputs).
func sortGroupsByStrength(groups [][][]byte) {
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groupStrength(groups[j]) > groupStrength(groups[j-1]); j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
}
