package faultnet

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections and echoes lines back, prefixed, until
// the client goes away.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "echo %s\n", sc.Text())
				}
			}(c)
		}
	}()
	return ln
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// roundTrip sends one line and reads the echo with a deadline.
func roundTrip(c net.Conn, line string, d time.Duration) (string, error) {
	if _, err := fmt.Fprintf(c, "%s\n", line); err != nil {
		return "", err
	}
	c.SetReadDeadline(time.Now().Add(d))
	defer c.SetReadDeadline(time.Time{})
	return bufio.NewReader(c).ReadString('\n')
}

// TestProxyPass: the healthy proxy is transparent.
func TestProxyPass(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	got, err := roundTrip(c, "hello", 2*time.Second)
	if err != nil || got != "echo hello\n" {
		t.Fatalf("round trip through healthy proxy: %q, %v", got, err)
	}
	if p.Accepted() != 1 {
		t.Fatalf("accepted = %d, want 1", p.Accepted())
	}
}

// TestProxyRefuse: refused connections fail fast — the fail-stop shape.
func TestProxyRefuse(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetMode(Refuse)
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err == nil {
		// The TCP handshake may complete before the reset arrives; the
		// first use must then fail quickly.
		if _, err := roundTrip(c, "x", 2*time.Second); err == nil {
			t.Fatal("refused connection answered")
		}
		c.Close()
	}
	if p.Refused() == 0 && err == nil {
		t.Fatal("no refusal recorded")
	}
	// Heal: new connections work again.
	p.SetMode(Pass)
	c2 := dialProxy(t, p)
	if got, err := roundTrip(c2, "back", 2*time.Second); err != nil || got != "echo back\n" {
		t.Fatalf("healed proxy: %q, %v", got, err)
	}
}

// TestProxyCutMidStream: an established connection dies with a reset,
// not a clean EOF, when the harness cuts it.
func TestProxyCutMidStream(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if got, err := roundTrip(c, "one", 2*time.Second); err != nil || got != "echo one\n" {
		t.Fatalf("pre-cut round trip: %q, %v", got, err)
	}
	p.CutConns()
	if _, err := roundTrip(c, "two", 2*time.Second); err == nil {
		t.Fatal("connection survived CutConns")
	}
	// New connections still pass (the cut is not a mode change).
	c2 := dialProxy(t, p)
	if got, err := roundTrip(c2, "three", 2*time.Second); err != nil || got != "echo three\n" {
		t.Fatalf("post-cut new connection: %q, %v", got, err)
	}
}

// TestProxyBlackhole: a black-holed connection opens but never answers;
// only a deadline detects it.
func TestProxyBlackhole(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetMode(Blackhole)
	c := dialProxy(t, p)
	_, err = roundTrip(c, "anyone", 300*time.Millisecond)
	if err == nil {
		t.Fatal("black hole answered")
	}
	var ne net.Error
	if !isTimeout(err, &ne) {
		t.Fatalf("black hole failed with %v, want a read deadline timeout", err)
	}
}

func isTimeout(err error, ne *net.Error) bool {
	if e, ok := err.(net.Error); ok {
		*ne = e
		return e.Timeout()
	}
	return false
}

// TestProxyLatency: injected latency delays the first byte by at least
// the configured spike.
func TestProxyLatency(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const spike = 150 * time.Millisecond
	p.SetLatency(spike)
	c := dialProxy(t, p)
	start := time.Now()
	got, err := roundTrip(c, "slow", 5*time.Second)
	if err != nil || got != "echo slow\n" {
		t.Fatalf("latency round trip: %q, %v", got, err)
	}
	if elapsed := time.Since(start); elapsed < spike {
		t.Fatalf("round trip took %v, want ≥ %v", elapsed, spike)
	}
}

// TestProxyClose: Close severs everything and stops accepting.
func TestProxyClose(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := dialProxy(t, p)
	if _, err := roundTrip(c, "pre", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := roundTrip(c, "post", 2*time.Second); err == nil {
		t.Fatal("connection survived Close")
	}
	if c2, err := net.DialTimeout("tcp", p.Addr(), 500*time.Millisecond); err == nil {
		if _, err := roundTrip(c2, "post2", time.Second); err == nil {
			t.Fatal("closed proxy accepted and served a connection")
		}
		c2.Close()
	}
}

// TestProxyTargetDown: with the target itself gone, proxied connections
// fail rather than hang.
func TestProxyTargetDown(t *testing.T) {
	ln := echoServer(t)
	addr := ln.Addr().String()
	ln.Close()
	p, err := New(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		return // fine: refused outright
	}
	defer c.Close()
	if got, err := roundTrip(c, "x", 2*time.Second); err == nil && !strings.HasPrefix(got, "echo") {
		t.Fatalf("unexpected answer from dead target: %q", got)
	} else if err == nil {
		t.Fatal("dead target echoed")
	}
	_ = io.Discard
}
