// Package faultnet is the network-level fault-injection harness: an
// in-process TCP proxy that sits between a frontend and one backend and
// injects the failure modes a real fleet sees — connection refusal,
// mid-stream cuts, latency spikes, and black holes — on command from a
// test. It is the network analogue of PR 7's injectable wal.FS seam:
// the code under test runs unmodified against real sockets while the
// harness decides, per backend and per moment, how the network behaves.
//
// A Proxy forwards 127.0.0.1:<ephemeral> → target. Tests point the
// frontend at Proxy.Addr() instead of the backend and then script
// faults:
//
//	p.SetMode(faultnet.Refuse)     // new connections reset immediately
//	p.SetMode(faultnet.Blackhole)  // connections open but never answer
//	p.SetLatency(300*time.Millisecond) // each direction stalls once per conn
//	p.CutConns()                   // sever every established connection now
//	p.SetMode(faultnet.Pass)       // heal
//
// Mode changes affect new connections; CutConns affects established
// ones, so "SIGKILL mid-stream" is SetMode(Refuse) + CutConns().
package faultnet

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects how the proxy treats new connections.
type Mode int32

const (
	// Pass forwards traffic unmodified (after the configured latency).
	Pass Mode = iota
	// Refuse resets every new connection immediately — the close
	// happens with linger 0, so clients observe a connection reset,
	// the fail-fast shape of a dead process whose port is closed.
	Refuse
	// Blackhole accepts new connections and never forwards a byte in
	// either direction — the packet-dropping shape (a wedged host, a
	// silently partitioned network) that only deadlines can detect.
	Blackhole
)

// Proxy is one fault-injectable TCP forwarder. Safe for concurrent use:
// tests flip modes while traffic is in flight.
type Proxy struct {
	target  string
	ln      net.Listener
	mode    atomic.Int32
	latency atomic.Int64 // nanoseconds injected once per conn per direction

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // both legs of every live connection
	closed bool

	accepted atomic.Int64
	refused  atomic.Int64
}

// New starts a proxy on an ephemeral localhost port forwarding to
// target (a host:port).
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	p := &Proxy{target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port) — the address the
// system under test should dial instead of the real backend.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetMode switches how new connections are treated.
func (p *Proxy) SetMode(m Mode) { p.mode.Store(int32(m)) }

// SetLatency makes each new connection stall for d in each direction
// before the first byte is forwarded — a latency spike, injected where
// a hedged read should route around it. Zero disables.
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// Accepted and Refused report connection counts, for assertions about
// whether a breaker actually stopped traffic.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }
func (p *Proxy) Refused() int64  { return p.refused.Load() }

// CutConns severs every established connection immediately (linger 0,
// so peers see a reset, not a clean EOF): the mid-stream cut. New
// connections are unaffected — combine with SetMode(Refuse) to emulate
// a killed process.
func (p *Proxy) CutConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		reset(c)
		delete(p.conns, c)
	}
}

// Close stops the proxy and severs everything.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.CutConns()
}

// reset closes a TCP conn with linger 0 so the peer sees RST.
func reset(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		switch Mode(p.mode.Load()) {
		case Refuse:
			p.refused.Add(1)
			reset(client)
			continue
		case Blackhole:
			p.accepted.Add(1)
			if !p.track(client) {
				reset(client)
				continue
			}
			// Hold the connection open, never answer; CutConns/Close
			// releases it.
			continue
		}
		p.accepted.Add(1)
		go p.serve(client)
	}
}

// serve forwards one connection in both directions until either leg
// dies or the harness cuts it.
func (p *Proxy) serve(client net.Conn) {
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		reset(client)
		return
	}
	if !p.track(client) || !p.track(server) {
		reset(client)
		reset(server)
		return
	}
	lat := time.Duration(p.latency.Load())
	var wg sync.WaitGroup
	pipe := func(dst, src net.Conn) {
		defer wg.Done()
		if lat > 0 {
			time.Sleep(lat)
		}
		io.Copy(dst, src) // returns on EOF, reset, or harness cut
		// Half-close propagation: when one direction ends, reset both
		// legs so the peer never hangs on a dead proxy pair.
		reset(dst)
		reset(src)
	}
	wg.Add(2)
	go pipe(server, client)
	go pipe(client, server)
	wg.Wait()
	p.untrack(client)
	p.untrack(server)
}
