package bitsucc

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// model is a reference implementation using a map.
type model map[int]bool

func (m model) next(x, u int) int {
	for i := x; i < u; i++ {
		if m[i] {
			return i
		}
	}
	return -1
}

func (m model) prev(x int) int {
	for i := x; i >= 0; i-- {
		if m[i] {
			return i
		}
	}
	return -1
}

func TestEmptySet(t *testing.T) {
	s := New(100)
	if s.Len() != 0 || s.Min() != -1 || s.Max() != -1 {
		t.Fatalf("empty set: Len=%d Min=%d Max=%d", s.Len(), s.Min(), s.Max())
	}
	if s.Next(0) != -1 || s.Prev(99) != -1 {
		t.Fatal("empty set should have no next/prev")
	}
	got := s.AppendRange(nil, 0, 99)
	if len(got) != 0 {
		t.Fatalf("empty set reported %v", got)
	}
}

func TestZeroUniverse(t *testing.T) {
	s := New(0)
	if s.Next(0) != -1 || s.Prev(0) != -1 || s.Contains(0) {
		t.Fatal("zero universe should be empty")
	}
}

func TestSingleElement(t *testing.T) {
	for _, u := range []int{1, 64, 65, 4096, 4097} {
		x := u - 1
		s := New(u)
		if !s.Add(x) {
			t.Fatalf("u=%d: Add(%d) reported not-new", u, x)
		}
		if s.Add(x) {
			t.Fatalf("u=%d: second Add(%d) reported new", u, x)
		}
		if !s.Contains(x) || s.Len() != 1 {
			t.Fatalf("u=%d: missing element", u)
		}
		if s.Min() != x || s.Max() != x {
			t.Fatalf("u=%d: Min=%d Max=%d want %d", u, s.Min(), s.Max(), x)
		}
		if s.Next(0) != x || s.Prev(u-1) != x {
			t.Fatalf("u=%d: Next/Prev wrong", u)
		}
		if !s.Remove(x) || s.Remove(x) || s.Len() != 0 {
			t.Fatalf("u=%d: Remove misbehaved", u)
		}
		if s.Next(0) != -1 {
			t.Fatalf("u=%d: ghost element after Remove", u)
		}
	}
}

func TestAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, u := range []int{1, 7, 64, 100, 4096, 100000} {
		s := New(u)
		m := model{}
		for op := 0; op < 3000; op++ {
			x := rng.Intn(u)
			switch rng.Intn(3) {
			case 0:
				got := s.Add(x)
				want := !m[x]
				m[x] = true
				if got != want {
					t.Fatalf("u=%d: Add(%d)=%v, want %v", u, x, got, want)
				}
			case 1:
				got := s.Remove(x)
				want := m[x]
				delete(m, x)
				if got != want {
					t.Fatalf("u=%d: Remove(%d)=%v, want %v", u, x, got, want)
				}
			case 2:
				if got, want := s.Next(x), m.next(x, u); got != want {
					t.Fatalf("u=%d: Next(%d)=%d, want %d", u, x, got, want)
				}
				if got, want := s.Prev(x), m.prev(x); got != want {
					t.Fatalf("u=%d: Prev(%d)=%d, want %d", u, x, got, want)
				}
			}
		}
		if s.Len() != len(m) {
			t.Fatalf("u=%d: Len=%d, want %d", u, s.Len(), len(m))
		}
	}
}

func TestReportRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := 10000
	s := New(u)
	var want []int
	for i := 0; i < 300; i++ {
		x := rng.Intn(u)
		if s.Add(x) {
			want = append(want, x)
		}
	}
	sort.Ints(want)
	got := s.AppendRange(nil, 0, u-1)
	if len(got) != len(want) {
		t.Fatalf("full report: got %d elements, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("full report mismatch at %d: got %d want %d", i, got[i], want[i])
		}
	}
	// Sub-ranges.
	for trial := 0; trial < 50; trial++ {
		lo, hi := rng.Intn(u), rng.Intn(u)
		if lo > hi {
			lo, hi = hi, lo
		}
		var wantSub []int
		for _, x := range want {
			if x >= lo && x <= hi {
				wantSub = append(wantSub, x)
			}
		}
		gotSub := s.AppendRange(nil, lo, hi)
		if len(gotSub) != len(wantSub) {
			t.Fatalf("range [%d,%d]: got %d elements, want %d", lo, hi, len(gotSub), len(wantSub))
		}
		for i := range gotSub {
			if gotSub[i] != wantSub[i] {
				t.Fatalf("range [%d,%d] mismatch at %d", lo, hi, i)
			}
		}
	}
}

func TestReportEarlyStop(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i += 10 {
		s.Add(i)
	}
	var seen []int
	s.Report(0, 99, func(x int) bool {
		seen = append(seen, x)
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[2] != 20 {
		t.Fatalf("early stop collected %v", seen)
	}
}

func TestNextPrevBoundaryClamping(t *testing.T) {
	s := New(128)
	s.Add(64)
	if s.Next(-5) != 64 {
		t.Fatal("Next should clamp negative x")
	}
	if s.Next(500) != -1 {
		t.Fatal("Next beyond universe should return -1")
	}
	if s.Prev(500) != 64 {
		t.Fatal("Prev should clamp x beyond universe")
	}
	if s.Prev(-1) != -1 {
		t.Fatal("Prev of negative should return -1")
	}
}

func TestQuickAddRemoveNext(t *testing.T) {
	f := func(seed int64, sizeRaw uint16) bool {
		u := int(sizeRaw)%20000 + 1
		rng := rand.New(rand.NewSource(seed))
		s := New(u)
		m := model{}
		for op := 0; op < 500; op++ {
			x := rng.Intn(u)
			if rng.Intn(2) == 0 {
				s.Add(x)
				m[x] = true
			} else {
				s.Remove(x)
				delete(m, x)
			}
		}
		probe := rng.Intn(u)
		return s.Next(probe) == m.next(probe, u) && s.Prev(probe) == m.prev(probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeUniverseDepth(t *testing.T) {
	// 2^26 bits of universe — exercises 4+ levels.
	u := 1 << 26
	s := New(u)
	points := []int{0, 1, 63, 64, 4095, 4096, 1 << 20, u - 2, u - 1}
	for _, p := range points {
		s.Add(p)
	}
	got := s.AppendRange(nil, 0, u-1)
	if len(got) != len(points) {
		t.Fatalf("got %v", got)
	}
	for i, p := range points {
		if got[i] != p {
			t.Fatalf("point %d: got %d want %d", i, got[i], p)
		}
	}
	if s.Next(65) != 4095 {
		t.Fatalf("Next(65)=%d, want 4095", s.Next(65))
	}
	if s.Prev(1<<20-1) != 4096 {
		t.Fatalf("Prev=%d, want 4096", s.Prev(1<<20-1))
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(1 << 24)
	rng := rand.New(rand.NewSource(1))
	xs := make([]int, 4096)
	for i := range xs {
		xs[i] = rng.Intn(1 << 24)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(xs[i&4095])
	}
}

func BenchmarkNext(b *testing.B) {
	s := New(1 << 24)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1<<16; i++ {
		s.Add(rng.Intn(1 << 24))
	}
	xs := make([]int, 4096)
	for i := range xs {
		xs[i] = rng.Intn(1 << 24)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(xs[i&4095])
	}
}

func TestAccessorsUniverse(t *testing.T) {
	s := New(1000)
	if s.Universe() != 1000 || s.Len() != 0 {
		t.Fatalf("Universe=%d Len=%d", s.Universe(), s.Len())
	}
	s.Add(999)
	s.Add(0)
	if s.SizeBits() <= 0 {
		t.Fatal("SizeBits not positive")
	}
	if s.Min() != 0 || s.Max() != 999 {
		t.Fatalf("Min=%d Max=%d", s.Min(), s.Max())
	}
}
