// Package bitsucc implements a hierarchical 64-ary bitmap tree over a
// fixed integer universe [0, u). It supports Set, Clear, Contains, Next,
// Prev and Report (enumerate members of a range) with O(log₆₄ u) worst-case
// cost per operation — at most 5 levels for u ≤ 2³⁰, effectively constant.
//
// The structure substitutes for the dynamic one-dimensional range-reporting
// data structure of Mortensen, Pagh and Pătrașcu (STOC 2005) used in Lemma 2
// of the paper: the paper needs to report all non-empty machine words of a
// deletion bitmap in O(1) time per reported word with O(logᵋ n) updates;
// the 64-ary tree achieves O(1)-per-item reporting with O(log₆₄ u) updates,
// which is within the paper's bounds for all universe sizes reachable in a
// single address space.
package bitsucc

import (
	"fmt"
	"math/bits"
)

// Set is a dynamic subset of [0, u) supporting constant-ish time
// predecessor/successor and range reporting.
type Set struct {
	universe int
	levels   [][]uint64 // levels[0] is the leaf bitmap; each higher level summarizes 64 words below
	count    int
}

// New creates an empty set over universe [0, u).
func New(u int) *Set {
	if u < 0 {
		panic("bitsucc: negative universe")
	}
	s := &Set{universe: u}
	n := (u + 63) / 64
	for {
		if n == 0 {
			n = 1
		}
		s.levels = append(s.levels, make([]uint64, n))
		if n == 1 {
			break
		}
		n = (n + 63) / 64
	}
	return s
}

// Universe reports the universe size u.
func (s *Set) Universe() int { return s.universe }

// Len reports the number of elements currently in the set.
func (s *Set) Len() int { return s.count }

// Contains reports whether x is in the set.
func (s *Set) Contains(x int) bool {
	if x < 0 || x >= s.universe {
		return false
	}
	return s.levels[0][x>>6]&(1<<uint(x&63)) != 0
}

// Add inserts x. It reports whether x was newly added.
func (s *Set) Add(x int) bool {
	if x < 0 || x >= s.universe {
		panic(fmt.Sprintf("bitsucc: Add(%d) outside universe [0,%d)", x, s.universe))
	}
	if s.Contains(x) {
		return false
	}
	for l := range s.levels {
		w, b := x>>6, uint(x&63)
		had := s.levels[l][w] != 0
		s.levels[l][w] |= 1 << b
		if had {
			break // summaries above are already set
		}
		x = w
	}
	s.count++
	return true
}

// Remove deletes x. It reports whether x was present.
func (s *Set) Remove(x int) bool {
	if x < 0 || x >= s.universe {
		return false
	}
	if !s.Contains(x) {
		return false
	}
	for l := range s.levels {
		w, b := x>>6, uint(x&63)
		s.levels[l][w] &^= 1 << b
		if s.levels[l][w] != 0 {
			break // word still non-empty; summaries stay set
		}
		x = w
	}
	s.count--
	return true
}

// Next returns the smallest element ≥ x, or -1 if none exists.
func (s *Set) Next(x int) int {
	if x < 0 {
		x = 0
	}
	if x >= s.universe {
		return -1
	}
	return s.next(0, x)
}

func (s *Set) next(level, x int) int {
	if level >= len(s.levels) {
		return -1
	}
	w, b := x>>6, uint(x&63)
	if w < len(s.levels[level]) {
		if rest := s.levels[level][w] >> b << b; rest != 0 {
			return w<<6 + bits.TrailingZeros64(rest)
		}
	}
	// Ascend: find the next non-empty word at this level.
	nw := s.next(level+1, w+1)
	if nw < 0 {
		return -1
	}
	return nw<<6 + bits.TrailingZeros64(s.levels[level][nw])
}

// Prev returns the largest element ≤ x, or -1 if none exists.
func (s *Set) Prev(x int) int {
	if x >= s.universe {
		x = s.universe - 1
	}
	if x < 0 {
		return -1
	}
	return s.prev(0, x)
}

func (s *Set) prev(level, x int) int {
	if level >= len(s.levels) || x < 0 {
		return -1
	}
	w, b := x>>6, uint(x&63)
	if w < len(s.levels[level]) {
		mask := ^uint64(0) >> (63 - b)
		if rest := s.levels[level][w] & mask; rest != 0 {
			return w<<6 + 63 - bits.LeadingZeros64(rest)
		}
	}
	pw := s.prev(level+1, w-1)
	if pw < 0 {
		return -1
	}
	return pw<<6 + 63 - bits.LeadingZeros64(s.levels[level][pw])
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int { return s.Next(0) }

// Max returns the largest element, or -1 if the set is empty.
func (s *Set) Max() int { return s.Prev(s.universe - 1) }

// Report calls fn for each element in [lo, hi] in increasing order.
// If fn returns false, reporting stops early.
func (s *Set) Report(lo, hi int, fn func(x int) bool) {
	x := s.Next(lo)
	for x >= 0 && x <= hi {
		if !fn(x) {
			return
		}
		x = s.Next(x + 1)
	}
}

// AppendRange appends all elements in [lo, hi] to dst and returns it.
func (s *Set) AppendRange(dst []int, lo, hi int) []int {
	s.Report(lo, hi, func(x int) bool {
		dst = append(dst, x)
		return true
	})
	return dst
}

// SizeBits estimates the memory footprint of the structure in bits.
func (s *Set) SizeBits() int64 {
	var n int64
	for _, l := range s.levels {
		n += int64(len(l)) * 64
	}
	return n
}
