package dyncoll

import (
	"fmt"
	"iter"

	"dyncoll/internal/binrel"
	"dyncoll/internal/graph"
)

// graphImpl is the slice of the internal graph API the facade needs;
// *graph.Graph satisfies it directly and shardedGraph satisfies it by
// fanning out over p of them.
type graphImpl interface {
	AddEdge(u, v uint64) bool
	DeleteEdge(u, v uint64) bool
	HasEdge(u, v uint64) bool
	EdgeCount() int
	NeighborsFunc(u uint64, fn func(v uint64) bool)
	ReverseNeighborsFunc(v uint64, fn func(u uint64) bool)
	Neighbors(u uint64) []uint64
	ReverseNeighbors(v uint64) []uint64
	OutDegree(u uint64) int
	InDegree(v uint64) int
	Edges() []binrel.Pair
	EdgesFunc(fn func(binrel.Pair) bool)
	WaitIdle()
	SizeBits() int64
	Stats() binrel.Stats
}

var (
	_ graphImpl = (*graph.Graph)(nil)
	_ graphImpl = (*shardedGraph)(nil)
)

// Graph is a dynamic compressed directed graph (Theorem 3). A digraph is
// the binary relation between nodes in which an edge u→v relates object
// u to label v, so the representation — compressed sub-collections, lazy
// deletions, O(log^ε n) updates — is inherited from Relation.
//
// An unsharded Graph (the default) is not safe for concurrent use. A
// Graph built with WithShards(p) partitions edges by source hash and is
// safe for concurrent readers and writers; in-edge queries
// (Predecessors, ReverseNeighbors, InDegree) fan out across shards in
// parallel.
type Graph struct {
	g      graphImpl
	cfg    config      // resolved construction config, recorded in snapshots
	mapped *mappedFile // v2 snapshot mapping, nil unless LoadMappedFile
}

// newGraphImpl builds one unsharded graph for cfg. As in the paper,
// the graph inherits its transformation machinery from the relation
// (and thus from the generic engine).
func newGraphImpl(cfg config) *graph.Graph {
	return graph.New(graph.Options{
		Tau:         cfg.tau,
		Epsilon:     cfg.epsilon,
		MinCapacity: cfg.minCapacity,
		WorstCase:   cfg.transformation == WorstCase,
		Inline:      cfg.syncRebuilds,
	})
}

// NewGraph creates an empty dynamic compressed directed graph. The
// default uses the amortized cascades; WithTransformation(WorstCase)
// selects bounded foreground work per update with background rebuilds,
// and WithShards(p) partitions the graph for concurrent access.
func NewGraph(opts ...Option) (*Graph, error) {
	cfg, err := newConfig(kindGraph, opts)
	if err != nil {
		return nil, err
	}
	return &Graph{g: newGraphAnyImpl(cfg), cfg: cfg}, nil
}

// newGraphAnyImpl builds the sharded or unsharded implementation for cfg.
func newGraphAnyImpl(cfg config) graphImpl {
	if cfg.shards > 0 {
		return newShardedGraph(cfg)
	}
	return newGraphImpl(cfg)
}

// AddEdge inserts the edge u→v. It fails with ErrDuplicateEdge if the
// edge already exists.
func (g *Graph) AddEdge(u, v uint64) error {
	if g.g.AddEdge(u, v) {
		return nil
	}
	return fmt.Errorf("dyncoll: add edge %d→%d: %w", u, v, ErrDuplicateEdge)
}

// DeleteEdge removes the edge u→v. It fails with ErrNotFound if the edge
// does not exist.
func (g *Graph) DeleteEdge(u, v uint64) error {
	if g.g.DeleteEdge(u, v) {
		return nil
	}
	return fmt.Errorf("dyncoll: delete edge %d→%d: %w", u, v, ErrNotFound)
}

// HasEdge reports whether the edge u→v exists.
func (g *Graph) HasEdge(u, v uint64) bool { return g.g.HasEdge(u, v) }

// EdgeCount reports the number of edges.
func (g *Graph) EdgeCount() int { return g.g.EdgeCount() }

// Successors returns a lazy iterator over the out-neighbors of u;
// breaking out of the range loop stops the underlying enumeration.
// On an unsharded graph, the graph must not be touched from the loop
// body or another goroutine until iteration completes: under WorstCase
// scheduling the iterator holds the graph's internal lock while
// yielding, so even a read re-entering the same graph would
// self-deadlock. On a sharded graph other goroutines may freely read and
// write during iteration, but the loop body itself must not touch the
// graph at all — a loop-body read can deadlock with a writer queued on
// a shard whose read lock the iterator holds.
func (g *Graph) Successors(u uint64) iter.Seq[uint64] {
	return func(yield func(uint64) bool) {
		g.g.NeighborsFunc(u, yield)
	}
}

// Predecessors returns a lazy iterator over the in-neighbors of v. The
// same re-entrancy rule as Successors applies.
func (g *Graph) Predecessors(v uint64) iter.Seq[uint64] {
	return func(yield func(uint64) bool) {
		g.g.ReverseNeighborsFunc(v, yield)
	}
}

// EdgesIter returns a lazy iterator over every edge as (object=u,
// label=v) pairs; breaking out of the range loop stops the underlying
// enumeration without materializing the edge set. The same re-entrancy
// rule as Successors applies.
func (g *Graph) EdgesIter() iter.Seq[Pair] {
	return func(yield func(Pair) bool) {
		g.g.EdgesFunc(yield)
	}
}

// NeighborsFunc streams the out-neighbors of u; stops when fn returns
// false.
func (g *Graph) NeighborsFunc(u uint64, fn func(v uint64) bool) { g.g.NeighborsFunc(u, fn) }

// ReverseNeighborsFunc streams the in-neighbors of v.
func (g *Graph) ReverseNeighborsFunc(v uint64, fn func(u uint64) bool) {
	g.g.ReverseNeighborsFunc(v, fn)
}

// Neighbors returns the sorted out-neighbors of u.
func (g *Graph) Neighbors(u uint64) []uint64 { return g.g.Neighbors(u) }

// ReverseNeighbors returns the sorted in-neighbors of v.
func (g *Graph) ReverseNeighbors(v uint64) []uint64 { return g.g.ReverseNeighbors(v) }

// OutDegree counts the out-neighbors of u.
func (g *Graph) OutDegree(u uint64) int { return g.g.OutDegree(u) }

// InDegree counts the in-neighbors of v.
func (g *Graph) InDegree(v uint64) int { return g.g.InDegree(v) }

// Edges returns every edge as (object=u, label=v) pairs.
func (g *Graph) Edges() []Pair { return g.g.Edges() }

// WaitIdle blocks until background rebuilds (WorstCase scheduling only)
// have completed — across every shard when the graph is sharded;
// otherwise it returns immediately.
func (g *Graph) WaitIdle() { g.g.WaitIdle() }

// Stats reports the graph's engine-level ladder state and rebuild
// counters, in the same shape Collection.Stats uses (sizes are edge
// counts). On a sharded graph the counters are aggregated across
// shards.
func (g *Graph) Stats() IndexStats {
	st := indexStatsFrom(g.g.Stats())
	if sh, ok := g.g.(*shardedGraph); ok {
		st.Shards = len(sh.shards)
	}
	st.fillResidency(g.mapped, g.SizeBits())
	return st
}

// SizeBits estimates the total footprint.
func (g *Graph) SizeBits() int64 { return g.g.SizeBits() }
