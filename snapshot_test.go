package dyncoll

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"
)

// registerSnapTestIndex registers the suffix-table test index (defined
// in errors_test.go) under a name the snapshot tests own, once.
var registerSnapTestIndex = sync.OnceFunc(func() {
	if err := RegisterIndex("snap-suffix-table", buildTestIndex); err != nil {
		panic(err)
	}
})

// snapCollectionCorpus fills c with documents across several ladder
// levels and deletes a few so lazy-deletion state must round-trip.
func snapCollectionCorpus(t *testing.T, c *Collection) {
	t.Helper()
	words := []string{"abracadabra", "alakazam", "avada kedavra", "hocus pocus", "sim sala bim"}
	var docs []Document
	for i := uint64(1); i <= 60; i++ {
		docs = append(docs, Document{ID: i, Data: []byte(fmt.Sprintf("%s %d", words[i%uint64(len(words))], i))})
	}
	if err := c.InsertBatch(docs[:40]); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	for _, d := range docs[40:] {
		mustInsert(t, c, d)
	}
	for _, id := range []uint64{3, 17, 41, 58} {
		if err := c.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
	}
}

// collectionsEqual compares query answers between two collections.
func collectionsEqual(t *testing.T, label string, a, b *Collection) {
	t.Helper()
	a.WaitIdle()
	b.WaitIdle()
	if a.DocCount() != b.DocCount() || a.Len() != b.Len() {
		t.Fatalf("%s: %d docs/%d symbols, want %d/%d", label, b.DocCount(), b.Len(), a.DocCount(), a.Len())
	}
	idsA, idsB := a.DocIDs(), b.DocIDs()
	slices.Sort(idsA)
	slices.Sort(idsB)
	if !slices.Equal(idsA, idsB) {
		t.Fatalf("%s: DocIDs diverge", label)
	}
	for _, p := range []string{"abra", "kazam", "a", "pocus", "zzz", "13"} {
		if ca, cb := a.Count([]byte(p)), b.Count([]byte(p)); ca != cb {
			t.Fatalf("%s: Count(%q) = %d, want %d", label, p, cb, ca)
		}
		occA, occB := a.Find([]byte(p)), b.Find([]byte(p))
		sortOcc := func(o []Occurrence) {
			slices.SortFunc(o, func(x, y Occurrence) int {
				if x.DocID != y.DocID {
					if x.DocID < y.DocID {
						return -1
					}
					return 1
				}
				return x.Off - y.Off
			})
		}
		sortOcc(occA)
		sortOcc(occB)
		if !slices.Equal(occA, occB) {
			t.Fatalf("%s: Find(%q) diverges (%d vs %d occs)", label, p, len(occB), len(occA))
		}
	}
	for _, id := range idsA {
		la, oka := a.DocLen(id)
		lb, okb := b.DocLen(id)
		if la != lb || oka != okb {
			t.Fatalf("%s: DocLen(%d) = (%d,%v), want (%d,%v)", label, id, lb, okb, la, oka)
		}
		da, _ := a.Extract(id, 0, la)
		db, _ := b.Extract(id, 0, lb)
		if !bytes.Equal(da, db) {
			t.Fatalf("%s: Extract(%d) diverges", label, id)
		}
	}
	for _, id := range []uint64{3, 17, 41, 58, 9999} {
		if a.Has(id) != b.Has(id) {
			t.Fatalf("%s: Has(%d) diverges", label, id)
		}
	}
}

// TestCollectionSnapshotRoundTrip is the acceptance matrix: every
// transformation × sharding × index (three built-ins plus a custom
// registry index) must answer identical queries after Save → Load.
func TestCollectionSnapshotRoundTrip(t *testing.T) {
	registerSnapTestIndex()
	for _, tr := range []Transformation{Amortized, WorstCase} {
		for _, shards := range []int{0, 4} {
			for _, index := range []string{IndexFM, IndexSA, IndexCSA, "snap-suffix-table"} {
				name := fmt.Sprintf("tr%d/shards%d/%s", tr, shards, index)
				t.Run(name, func(t *testing.T) {
					opts := []Option{
						WithTransformation(tr),
						WithIndex(index),
						WithSyncRebuilds(),
						WithMinCapacity(16),
					}
					if shards > 0 {
						opts = append(opts, WithShards(shards))
					}
					c := mustCollection(t, opts...)
					snapCollectionCorpus(t, c)
					c.WaitIdle()

					var buf bytes.Buffer
					if err := c.Save(&buf); err != nil {
						t.Fatalf("Save: %v", err)
					}
					loaded := mustCollection(t) // default config: Load must replace it
					if err := loaded.Load(bytes.NewReader(buf.Bytes())); err != nil {
						t.Fatalf("Load: %v", err)
					}
					collectionsEqual(t, name, c, loaded)
					if got := loaded.Stats().Shards; got != shards {
						t.Fatalf("loaded shards = %d, want %d", got, shards)
					}

					// The loaded collection stays fully mutable.
					if err := loaded.Insert(Document{ID: 1000, Data: []byte("post-load abra")}); err != nil {
						t.Fatalf("post-load Insert: %v", err)
					}
					loaded.WaitIdle()
					if got, want := loaded.Count([]byte("abra")), c.Count([]byte("abra"))+1; got != want {
						t.Fatalf("post-load Count = %d, want %d", got, want)
					}
				})
			}
		}
	}
}

func snapRelationCorpus(t *testing.T, add func(o, l uint64) error, del func(o, l uint64) error) {
	t.Helper()
	for o := uint64(1); o <= 40; o++ {
		for l := uint64(1); l <= 1+o%7; l++ {
			if err := add(o, o*100+l); err != nil {
				t.Fatalf("add(%d,%d): %v", o, o*100+l, err)
			}
			if err := add(o, l); err != nil {
				t.Fatalf("add(%d,%d): %v", o, l, err)
			}
		}
	}
	for o := uint64(2); o <= 40; o += 5 {
		if err := del(o, 1); err != nil {
			t.Fatalf("del(%d,1): %v", o, err)
		}
	}
}

// TestRelationSnapshotRoundTrip covers Relation × transformation ×
// sharding.
func TestRelationSnapshotRoundTrip(t *testing.T) {
	for _, tr := range []Transformation{Amortized, WorstCase} {
		for _, shards := range []int{0, 4} {
			t.Run(fmt.Sprintf("tr%d/shards%d", tr, shards), func(t *testing.T) {
				opts := []Option{WithTransformation(tr), WithSyncRebuilds(), WithMinCapacity(16)}
				if shards > 0 {
					opts = append(opts, WithShards(shards))
				}
				r, err := NewRelation(opts...)
				if err != nil {
					t.Fatal(err)
				}
				snapRelationCorpus(t, r.Add, r.Delete)
				r.WaitIdle()

				var buf bytes.Buffer
				if err := r.Save(&buf); err != nil {
					t.Fatalf("Save: %v", err)
				}
				loaded, err := NewRelation()
				if err != nil {
					t.Fatal(err)
				}
				if err := loaded.Load(bytes.NewReader(buf.Bytes())); err != nil {
					t.Fatalf("Load: %v", err)
				}
				loaded.WaitIdle()
				if loaded.Len() != r.Len() {
					t.Fatalf("Len = %d, want %d", loaded.Len(), r.Len())
				}
				for o := uint64(1); o <= 41; o++ {
					if !slices.Equal(loaded.Labels(o), r.Labels(o)) {
						t.Fatalf("Labels(%d) diverge", o)
					}
					if loaded.CountLabels(o) != r.CountLabels(o) {
						t.Fatalf("CountLabels(%d) diverges", o)
					}
				}
				for l := uint64(1); l <= 8; l++ {
					if !slices.Equal(loaded.Objects(l), r.Objects(l)) {
						t.Fatalf("Objects(%d) diverge", l)
					}
					if loaded.CountObjects(l) != r.CountObjects(l) {
						t.Fatalf("CountObjects(%d) diverges", l)
					}
				}
				for o := uint64(1); o <= 40; o++ {
					if loaded.Related(o, 1) != r.Related(o, 1) {
						t.Fatalf("Related(%d,1) diverges", o)
					}
				}
				// Still mutable after load.
				if err := loaded.Add(999, 999); err != nil {
					t.Fatalf("post-load Add: %v", err)
				}
			})
		}
	}
}

// TestGraphSnapshotRoundTrip covers Graph × transformation × sharding.
func TestGraphSnapshotRoundTrip(t *testing.T) {
	for _, tr := range []Transformation{Amortized, WorstCase} {
		for _, shards := range []int{0, 4} {
			t.Run(fmt.Sprintf("tr%d/shards%d", tr, shards), func(t *testing.T) {
				opts := []Option{WithTransformation(tr), WithSyncRebuilds(), WithMinCapacity(16)}
				if shards > 0 {
					opts = append(opts, WithShards(shards))
				}
				g, err := NewGraph(opts...)
				if err != nil {
					t.Fatal(err)
				}
				snapRelationCorpus(t, g.AddEdge, g.DeleteEdge)
				g.WaitIdle()

				var buf bytes.Buffer
				if err := g.Save(&buf); err != nil {
					t.Fatalf("Save: %v", err)
				}
				loaded, err := NewGraph()
				if err != nil {
					t.Fatal(err)
				}
				if err := loaded.Load(bytes.NewReader(buf.Bytes())); err != nil {
					t.Fatalf("Load: %v", err)
				}
				loaded.WaitIdle()
				if loaded.EdgeCount() != g.EdgeCount() {
					t.Fatalf("EdgeCount = %d, want %d", loaded.EdgeCount(), g.EdgeCount())
				}
				for u := uint64(1); u <= 41; u++ {
					if !slices.Equal(loaded.Neighbors(u), g.Neighbors(u)) {
						t.Fatalf("Successors(%d) diverge", u)
					}
					if loaded.OutDegree(u) != g.OutDegree(u) {
						t.Fatalf("OutDegree(%d) diverges", u)
					}
				}
				for v := uint64(1); v <= 8; v++ {
					if !slices.Equal(loaded.ReverseNeighbors(v), g.ReverseNeighbors(v)) {
						t.Fatalf("Predecessors(%d) diverge", v)
					}
					if loaded.InDegree(v) != g.InDegree(v) {
						t.Fatalf("InDegree(%d) diverges", v)
					}
				}
				if err := loaded.AddEdge(999, 998); err != nil {
					t.Fatalf("post-load AddEdge: %v", err)
				}
			})
		}
	}
}

// TestSnapshotUnknownIndex checks that loading a snapshot whose index
// name has no registered builder fails with ErrUnknownIndex and leaves
// the receiver untouched.
func TestSnapshotUnknownIndex(t *testing.T) {
	one := sync.OnceFunc(func() {
		if err := RegisterIndex("snap-ephemeral", buildTestIndex); err != nil {
			t.Fatal(err)
		}
	})
	one()
	c := mustCollection(t, WithIndex("snap-ephemeral"), WithSyncRebuilds(), WithMinCapacity(16))
	snapCollectionCorpus(t, c)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Rewrite the header's index name to something unregistered. The
	// name is a length-prefixed string, so an equal-length replacement
	// keeps the rest of the file intact.
	data := bytes.Replace(buf.Bytes(), []byte("snap-ephemeral"), []byte("no-such-index!"), 1)

	loaded := mustCollection(t, WithSyncRebuilds())
	mustInsert(t, loaded, Document{ID: 7, Data: []byte("untouched")})
	if err := loaded.Load(bytes.NewReader(data)); !errors.Is(err, ErrUnknownIndex) {
		t.Fatalf("Load with unregistered index: got %v, want ErrUnknownIndex", err)
	}
	if loaded.Count([]byte("untouched")) != 1 {
		t.Fatal("failed Load modified the receiver")
	}
}

// TestSnapshotCorruptInput mutates and truncates snapshot bytes for all
// three structures: Load must fail with ErrBadSnapshot (or load an
// equivalent value for mutations of don't-care bytes) and never panic,
// and the receiver must stay usable.
func TestSnapshotCorruptInput(t *testing.T) {
	c := mustCollection(t, WithSyncRebuilds(), WithMinCapacity(16))
	snapCollectionCorpus(t, c)
	var cbuf bytes.Buffer
	if err := c.Save(&cbuf); err != nil {
		t.Fatal(err)
	}
	r, _ := NewRelation(WithMinCapacity(16))
	snapRelationCorpus(t, r.Add, r.Delete)
	var rbuf bytes.Buffer
	if err := r.Save(&rbuf); err != nil {
		t.Fatal(err)
	}
	g, _ := NewGraph(WithMinCapacity(16))
	snapRelationCorpus(t, g.AddEdge, g.DeleteEdge)
	var gbuf bytes.Buffer
	if err := g.Save(&gbuf); err != nil {
		t.Fatal(err)
	}

	load := map[string]func(data []byte) error{
		"collection": func(data []byte) error {
			fresh := mustCollection(t)
			return fresh.Load(bytes.NewReader(data))
		},
		"relation": func(data []byte) error {
			fresh, _ := NewRelation()
			return fresh.Load(bytes.NewReader(data))
		},
		"graph": func(data []byte) error {
			fresh, _ := NewGraph()
			return fresh.Load(bytes.NewReader(data))
		},
	}
	for name, data := range map[string][]byte{
		"collection": cbuf.Bytes(),
		"relation":   rbuf.Bytes(),
		"graph":      gbuf.Bytes(),
	} {
		// Truncations must always error.
		for cut := 0; cut < len(data); cut += 13 {
			if err := load[name](data[:cut]); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("%s truncated at %d: got %v, want ErrBadSnapshot", name, cut, err)
			}
		}
		// Byte flips must never panic (they may error or decode to some
		// equivalent structure when the flipped byte was don't-care).
		step := len(data)/197 + 1
		for pos := 0; pos < len(data); pos += step {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 0xa5
			_ = load[name](mut)
		}
		// Wrong kind: a relation snapshot into a collection and vice
		// versa.
		other := "relation"
		if name == "relation" {
			other = "graph"
		}
		if err := load[name](map[string][]byte{
			"collection": rbuf.Bytes(), "relation": gbuf.Bytes(), "graph": cbuf.Bytes(),
		}[name]); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("%s loading a %s snapshot: got %v, want ErrBadSnapshot", name, other, err)
		}
	}
}

// TestSnapshotFiles exercises the atomic file wrappers, including
// overwrite of an existing snapshot.
func TestSnapshotFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "coll.snap")

	c := mustCollection(t, WithSyncRebuilds(), WithMinCapacity(16))
	snapCollectionCorpus(t, c)
	if err := c.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	// Overwrite with more data; the rename must replace the old bytes.
	mustInsert(t, c, Document{ID: 500, Data: []byte("second save")})
	if err := c.SaveFile(path); err != nil {
		t.Fatalf("SaveFile overwrite: %v", err)
	}
	loaded := mustCollection(t)
	if err := loaded.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	collectionsEqual(t, "file", c, loaded)
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover files in snapshot dir: %v", entries)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	// Missing file surfaces the OS error, not a panic.
	if err := loaded.LoadFile(filepath.Join(dir, "absent.snap")); err == nil {
		t.Fatal("LoadFile of missing path succeeded")
	}
}

// TestSnapshotConcurrentReaders checks Save on a sharded collection
// coexists with concurrent readers (it holds read locks only).
func TestSnapshotConcurrentReaders(t *testing.T) {
	c := mustCollection(t, WithShards(4), WithSyncRebuilds(), WithMinCapacity(16))
	snapCollectionCorpus(t, c)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Count([]byte("abra"))
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Errorf("Save under readers: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSaveFileDurableRename covers the atomic-save path end to end: the
// snapshot must land under its final name (rename complete, containing
// directory synced so the entry is durable), leave no temp files
// behind, and overwrite an existing snapshot in place — and the file
// that survives must load back to identical query answers.
func TestSaveFileDurableRename(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "coll.snap")
	c := mustCollection(t, WithShards(2), WithSyncRebuilds(), WithMinCapacity(16))
	snapCollectionCorpus(t, c)
	if err := c.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	// Overwrite: the rename path must replace, not fail on, an existing
	// destination.
	mustInsert(t, c, Document{ID: 900, Data: []byte("post-first-save")})
	if err := c.SaveFile(path); err != nil {
		t.Fatalf("SaveFile over existing: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "coll.snap" {
			t.Errorf("unexpected file %q next to the snapshot (leaked temp file?)", e.Name())
		}
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot missing or empty after rename: %v", err)
	}
	loaded := mustCollection(t)
	if err := loaded.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	collectionsEqual(t, "durable rename", c, loaded)
}

// TestSyncDir checks the directory-fsync helper both on a real
// directory and on a missing one.
func TestSyncDir(t *testing.T) {
	if err := syncDir(t.TempDir()); err != nil {
		t.Fatalf("syncDir on a real directory: %v", err)
	}
	if err := syncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("syncDir on a missing directory: expected error")
	}
}
