package dyncoll

import (
	"iter"
	"slices"

	"dyncoll/internal/core"
	"dyncoll/internal/query"
)

// Searching: beyond exact pattern enumeration (Find and friends), a
// Collection answers regex queries and ranked top-k queries through one
// query-execution layer (internal/query). A SearchPlan describes the
// request; it compiles once into a plan that executes identically over
// a single ladder, a sharded collection, and — serialized through the
// dyndocd /v1/search endpoint — a fleet of networked backends, because
// each level is just a union of static sub-collections (see DESIGN.md).

// Match is one search result: for streaming plans one occurrence (like
// Occurrence, plus the match length, which regex matches need); for
// ranked plans one document, best score first, with Off/Len describing
// its earliest match.
type Match = query.Match

// SearchPlan describes one search request — the argument of Search and
// the JSON body of the dyndocd /v1/search endpoint. The zero value with
// only Pattern set is an exact streaming search; Regex, Ranked and K
// select the other variants.
type SearchPlan = query.Spec

// Search compiles plan and streams its results into fn; enumeration
// stops when fn returns false. It fails with ErrBadPattern if the plan
// does not compile (malformed regex, negative k). Ranked plans deliver
// documents best-first with deterministic order (score descending,
// document ID ascending on ties); streaming plans deliver occurrences
// in unspecified order. The FindIter re-entrancy rules apply while fn
// is executing.
func (c *Collection) Search(plan SearchPlan, fn func(Match) bool) error {
	p, err := query.Compile(plan)
	if err != nil {
		return err
	}
	return c.execute(p, fn)
}

// execute routes a compiled plan to the right executor level: the
// sharded fan-out merge, or a single-source executor for an unsharded
// collection.
func (c *Collection) execute(p *query.Plan, fn func(Match) bool) error {
	if sh, ok := c.impl.(*shardedColl); ok {
		return sh.execute(p, fn)
	}
	return query.Over(sourceOf(c.impl)).Execute(p, fn)
}

// FindLimit returns at most k occurrences of pattern — the prefix fast
// path for "just show me some matches": enumeration stops at the k-th
// match instead of materializing the full result set the way Find does.
// k ≤ 0 returns nil. Which k occurrences arrive is unspecified, as is
// their order (on a sharded collection shards race to fill the quota).
func (c *Collection) FindLimit(pattern []byte, k int) []Occurrence {
	if k <= 0 {
		return nil
	}
	out := make([]Occurrence, 0, min(k, 64))
	c.impl.FindFunc(pattern, func(o Occurrence) bool {
		out = append(out, o)
		return len(out) < k
	})
	return out
}

// FindTopK returns a single-use iterator over the k highest-scoring
// documents containing pattern, best first (k ≤ 0: every matching
// document, ranked). Scores combine match count, earliest match
// position, and a short-document prior; order is deterministic. The
// FindIter re-entrancy rules apply during iteration.
func (c *Collection) FindTopK(pattern []byte, k int) iter.Seq[Match] {
	p, _ := query.Compile(query.Spec{PatternB: pattern, Ranked: true, K: max(k, 0)})
	return c.planIter(p)
}

// FindRegexp returns a single-use iterator over every match of the
// regular expression expr (Go regexp syntax, matched per document — ^
// and $ bind to document boundaries). It fails with ErrBadPattern if
// expr does not compile. Execution extracts required literals from the
// expression and verifies only documents the index says can match,
// falling back to scanning every document when no literal exists. The
// FindIter re-entrancy rules apply during iteration.
func (c *Collection) FindRegexp(expr string) (iter.Seq[Match], error) {
	p, err := query.Compile(query.Spec{Pattern: expr, Regex: true})
	if err != nil {
		return nil, err
	}
	return c.planIter(p), nil
}

// FindRegexpTopK returns a single-use iterator over the k
// highest-scoring documents matching the regular expression expr, best
// first (k ≤ 0: every matching document, ranked). It fails with
// ErrBadPattern if expr does not compile. The FindIter re-entrancy
// rules apply during iteration.
func (c *Collection) FindRegexpTopK(expr string, k int) (iter.Seq[Match], error) {
	p, err := query.Compile(query.Spec{Pattern: expr, Regex: true, Ranked: true, K: max(k, 0)})
	if err != nil {
		return nil, err
	}
	return c.planIter(p), nil
}

// planIter adapts a compiled plan to the iterator shape shared by the
// Find* family.
func (c *Collection) planIter(p *query.Plan) iter.Seq[Match] {
	return func(yield func(Match) bool) {
		c.execute(p, yield)
	}
}

// sourceOf presents an unsharded implementation as a query.Source. The
// core transformations satisfy the interface directly; anything else
// (no current implementation) goes through the collect-and-sort
// adapter.
func sourceOf(impl collImpl) query.Source {
	if src, ok := impl.(query.Source); ok {
		return src
	}
	return sourceAdapter{impl}
}

// sourceAdapter derives FindGroupedFunc from plain FindFunc: collect,
// sort by (document, offset), replay. Sound for any collImpl because a
// live document has exactly one owner, so grouping is a pure reorder.
type sourceAdapter struct{ collImpl }

func (a sourceAdapter) FindGroupedFunc(pattern []byte, fn func(core.Occurrence) bool) {
	var occs []core.Occurrence
	a.collImpl.FindFunc(pattern, func(o core.Occurrence) bool {
		occs = append(occs, o)
		return true
	})
	slices.SortFunc(occs, func(x, y core.Occurrence) int {
		if x.DocID != y.DocID {
			if x.DocID < y.DocID {
				return -1
			}
			return 1
		}
		return x.Off - y.Off
	})
	for _, o := range occs {
		if !fn(o) {
			return
		}
	}
}

// ObjectsLimit returns at most k objects related to label — the fan-out
// prefix fast path matching Collection.FindLimit. k ≤ 0 returns nil;
// which objects arrive is unspecified.
func (r *Relation) ObjectsLimit(label uint64, k int) []uint64 {
	if k <= 0 {
		return nil
	}
	out := make([]uint64, 0, min(k, 64))
	r.rel.ObjectsOf(label, func(object uint64) bool {
		out = append(out, object)
		return len(out) < k
	})
	return out
}

// ReverseNeighborsLimit returns at most k sources with an edge into v —
// the fan-out prefix fast path matching Collection.FindLimit. k ≤ 0
// returns nil; which sources arrive is unspecified.
func (g *Graph) ReverseNeighborsLimit(v uint64, k int) []uint64 {
	if k <= 0 {
		return nil
	}
	out := make([]uint64, 0, min(k, 64))
	g.g.ReverseNeighborsFunc(v, func(u uint64) bool {
		out = append(out, u)
		return len(out) < k
	})
	return out
}
