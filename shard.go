package dyncoll

// Sharded structures: WithShards(p) partitions a Collection, Relation,
// or Graph across p independent sub-structures, each with its own
// rebuild pipeline and its own sync.RWMutex. Updates route to the shard
// owning the key (document ID, relation object, or edge source) under
// that shard's write lock; batch updates split per shard and ingest
// concurrently; queries that cannot be routed — Find, Count, ObjectsOf,
// Predecessors, full enumerations — fan out across all shards in
// parallel goroutines and merge into one stream under per-shard read
// locks.
//
// Sharding is invisible to query semantics: the paper's transformations
// already answer a query as the union over independent sub-collections
// (the ladder levels), and a sharded structure is just one more level of
// the same union, split by key hash instead of by age. See DESIGN.md.

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"dyncoll/internal/binrel"
	"dyncoll/internal/core"
	"dyncoll/internal/doc"
	"dyncoll/internal/fanout"
	"dyncoll/internal/graph"
	"dyncoll/internal/query"
	"dyncoll/internal/shardmap"
)

// shardOf maps a key to one of p shards through the module-wide
// placement contract (internal/shardmap): the same function the
// networked frontend uses for key→backend routing, pinned by golden
// tests because snapshots record per-shard ladders.
func shardOf(key uint64, p int) int { return shardmap.ShardOf(key, p) }

// Fan-out/merge goes straight through internal/fanout — the same
// contract the networked frontend applies to per-backend NDJSON
// streams. See that package for the chunking and early-break semantics.

// aggStats merges per-shard engine stats into one: counters sum,
// per-level numbers sum element-wise, top lists concatenate, Tau is
// taken from shard 0 (all shards share a config). Every sharded
// structure — collection, relation, graph — aggregates through this one
// code path; get is responsible for its shard's lock.
func aggStats(n int, get func(i int) core.Stats) core.Stats {
	var agg core.Stats
	for i := 0; i < n; i++ {
		st := get(i)
		if i == 0 {
			agg.Tau = st.Tau
		}
		if st.Levels > agg.Levels {
			agg.Levels = st.Levels
		}
		for j, sz := range st.LevelSizes {
			if j == len(agg.LevelSizes) {
				agg.LevelSizes = append(agg.LevelSizes, 0)
				agg.LevelCaps = append(agg.LevelCaps, 0)
				agg.LevelDead = append(agg.LevelDead, 0)
			}
			agg.LevelSizes[j] += sz
			agg.LevelCaps[j] += st.LevelCaps[j]
			agg.LevelDead[j] += st.LevelDead[j]
		}
		agg.LevelRebuilds += st.LevelRebuilds
		agg.GlobalRebuilds += st.GlobalRebuilds
		agg.Purges += st.Purges
		agg.BackgroundBuilds += st.BackgroundBuilds
		agg.SyncBuilds += st.SyncBuilds
		agg.TempParks += st.TempParks
		agg.TopPurges += st.TopPurges
		agg.Rebalances += st.Rebalances
		agg.PendingBuilds += st.PendingBuilds
		agg.Tops += st.Tops
		agg.MaxTops += st.MaxTops
		agg.TopSizes = append(agg.TopSizes, st.TopSizes...)
		agg.TopDead = append(agg.TopDead, st.TopDead...)
		agg.NF += st.NF
	}
	return agg
}

// --- Collection ---

// collShard is one partition of a sharded collection: an independent
// core implementation guarded by its own RWMutex. Queries take the read
// lock (the worst-case transformation additionally serializes on its
// internal mutex, which is fine under a read lock); updates take the
// write lock.
type collShard struct {
	mu   sync.RWMutex
	impl collImpl
}

// shardedColl implements collImpl over p collShards keyed by document
// ID.
type shardedColl struct {
	shards []*collShard
}

// newShardedColl builds cfg.shards identical sub-collections.
func newShardedColl(cfg config) (*shardedColl, error) {
	s := &shardedColl{shards: make([]*collShard, cfg.shards)}
	for i := range s.shards {
		impl, err := newCollImpl(cfg)
		if err != nil {
			return nil, err
		}
		s.shards[i] = &collShard{impl: impl}
	}
	return s, nil
}

func (s *shardedColl) shard(id uint64) *collShard {
	return s.shards[shardOf(id, len(s.shards))]
}

func (s *shardedColl) Insert(d doc.Doc) error {
	sh := s.shard(d.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.impl.Insert(d)
}

// InsertBatch splits the batch per shard and ingests the parts
// concurrently. Atomicity is preserved: every involved shard's write
// lock is held while the whole batch is validated (in-batch duplicates,
// live-ID collisions, reserved bytes), so either all documents land or
// none do, and no concurrent writer can invalidate the check.
func (s *shardedColl) InsertBatch(docs []doc.Doc) error {
	p := len(s.shards)
	parts := make([][]doc.Doc, p)
	seen := make(map[uint64]bool, len(docs))
	for _, d := range docs {
		if seen[d.ID] {
			return fmt.Errorf("dyncoll: insert id %d: %w", d.ID, ErrDuplicateID)
		}
		seen[d.ID] = true
		if !d.Valid() {
			return fmt.Errorf("dyncoll: insert id %d: %w", d.ID, ErrReservedByte)
		}
		t := shardOf(d.ID, p)
		parts[t] = append(parts[t], d)
	}
	for i, part := range parts {
		if part == nil {
			continue
		}
		s.shards[i].mu.Lock()
		defer s.shards[i].mu.Unlock()
	}
	for i, part := range parts {
		for _, d := range part {
			if s.shards[i].impl.Has(d.ID) {
				return fmt.Errorf("dyncoll: insert id %d: %w", d.ID, ErrDuplicateID)
			}
		}
	}
	var involved []int
	for i, part := range parts {
		if part != nil {
			involved = append(involved, i)
		}
	}
	var firstErr atomic.Pointer[error]
	fanout.ForEach(len(involved), func(k int) {
		i := involved[k]
		// Validated above under the held locks, so this cannot fail on
		// user input; surface internal errors anyway rather than drop them.
		if err := s.shards[i].impl.InsertBatch(parts[i]); err != nil {
			firstErr.CompareAndSwap(nil, &err)
		}
	})
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

func (s *shardedColl) Delete(id uint64) bool {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.impl.Delete(id)
}

// DeleteBatch splits the IDs per shard and deletes concurrently.
func (s *shardedColl) DeleteBatch(ids []uint64) int {
	p := len(s.shards)
	parts := make([][]uint64, p)
	for _, id := range ids {
		t := shardOf(id, p)
		parts[t] = append(parts[t], id)
	}
	var involved []int
	for i, part := range parts {
		if part != nil {
			involved = append(involved, i)
		}
	}
	var total atomic.Int64
	fanout.ForEach(len(involved), func(k int) {
		sh := s.shards[involved[k]]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		total.Add(int64(sh.impl.DeleteBatch(parts[involved[k]])))
	})
	return int(total.Load())
}

func (s *shardedColl) Has(id uint64) bool {
	sh := s.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.impl.Has(id)
}

func (s *shardedColl) DocIDs() []uint64 {
	return fanout.Gather(len(s.shards), func(i int) []uint64 {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.impl.DocIDs()
	})
}

// Find fans the pattern out across all shards in parallel and
// concatenates the per-shard results (order is unspecified, as for the
// unsharded collection).
func (s *shardedColl) Find(pattern []byte) []core.Occurrence {
	return fanout.Gather(len(s.shards), func(i int) []core.Occurrence {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.impl.Find(pattern)
	})
}

// FindFunc streams the parallel fan-out: each shard enumerates under its
// read lock in its own goroutine and the matches merge into fn. When fn
// returns false every shard stops at its next match.
func (s *shardedColl) FindFunc(pattern []byte, fn func(core.Occurrence) bool) {
	fanout.FanOut(len(s.shards), func(i int, emit func(core.Occurrence) bool) {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		sh.impl.FindFunc(pattern, emit)
	}, fn)
}

// execute runs a compiled query plan over the shard union — the
// sharded level of the plan/execute hierarchy. A streaming plan fans
// out per-shard executors (each already k-bounded) and enforces the
// global k at the merge point, so the early break propagates into every
// shard's enumeration mid-stream. A ranked plan gathers each shard's
// exact local top-k list in parallel and merges: scores are
// document-local and documents are shard-exclusive, so the merge of
// per-shard top-k lists is the exact global top-k.
func (s *shardedColl) execute(p *query.Plan, fn func(query.Match) bool) error {
	if p.Ranked() {
		lists := make([][]query.Match, len(s.shards))
		fanout.ForEach(len(s.shards), func(i int) {
			sh := s.shards[i]
			sh.mu.RLock()
			defer sh.mu.RUnlock()
			lists[i] = query.Collect(sourceOf(sh.impl), p)
		})
		query.MergeRanked(lists, p.K(), fn)
		return nil
	}
	k := p.K()
	n := 0
	fanout.FanOut(len(s.shards), func(i int, emit func(query.Match) bool) {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		query.Over(sourceOf(sh.impl)).Execute(p, emit)
	}, func(m query.Match) bool {
		if !fn(m) {
			return false
		}
		n++
		return k <= 0 || n < k
	})
	return nil
}

func (s *shardedColl) Count(pattern []byte) int {
	var total atomic.Int64
	fanout.ForEach(len(s.shards), func(i int) {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		total.Add(int64(sh.impl.Count(pattern)))
	})
	return int(total.Load())
}

func (s *shardedColl) Extract(id uint64, off, length int) ([]byte, bool) {
	sh := s.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.impl.Extract(id, off, length)
}

func (s *shardedColl) DocLen(id uint64) (int, bool) {
	sh := s.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.impl.DocLen(id)
}

func (s *shardedColl) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.impl.Len()
		sh.mu.RUnlock()
	}
	return n
}

func (s *shardedColl) DocCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.impl.DocCount()
		sh.mu.RUnlock()
	}
	return n
}

func (s *shardedColl) SizeBits() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.impl.SizeBits()
		sh.mu.RUnlock()
	}
	return n
}

// WaitIdle quiesces every shard's background rebuild pipeline (a no-op
// per shard under the amortized transformations).
func (s *shardedColl) WaitIdle() {
	for _, sh := range s.shards {
		sh.impl.WaitIdle()
	}
}

// Stats aggregates per-shard engine stats through aggStats.
func (s *shardedColl) Stats() core.Stats {
	return aggStats(len(s.shards), func(i int) core.Stats {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.impl.Stats()
	})
}

// --- Relation ---

// relShard is one partition of a sharded relation, keyed by object.
type relShard struct {
	mu  sync.RWMutex
	rel relationImpl
}

// shardedRelation implements relationImpl over p relShards keyed by
// object: object-keyed operations route to one shard; label-keyed and
// full enumerations fan out.
type shardedRelation struct {
	shards []*relShard
}

func newShardedRelation(cfg config) *shardedRelation {
	s := &shardedRelation{shards: make([]*relShard, cfg.shards)}
	for i := range s.shards {
		s.shards[i] = &relShard{rel: newRelationImpl(cfg)}
	}
	return s
}

func (s *shardedRelation) shard(object uint64) *relShard {
	return s.shards[shardOf(object, len(s.shards))]
}

func (s *shardedRelation) Add(object, label uint64) bool {
	sh := s.shard(object)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.rel.Add(object, label)
}

func (s *shardedRelation) Delete(object, label uint64) bool {
	sh := s.shard(object)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.rel.Delete(object, label)
}

func (s *shardedRelation) Related(object, label uint64) bool {
	sh := s.shard(object)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.rel.Related(object, label)
}

func (s *shardedRelation) LabelsOf(object uint64, fn func(label uint64) bool) {
	sh := s.shard(object)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sh.rel.LabelsOf(object, fn)
}

// ObjectsOf fans out across all shards in parallel: any shard may hold
// pairs with the given label. Order is unspecified.
func (s *shardedRelation) ObjectsOf(label uint64, fn func(object uint64) bool) {
	fanout.FanOut(len(s.shards), func(i int, emit func(uint64) bool) {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		sh.rel.ObjectsOf(label, emit)
	}, fn)
}

func (s *shardedRelation) Labels(object uint64) []uint64 {
	sh := s.shard(object)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.rel.Labels(object)
}

// Objects gathers per-shard results in parallel and sorts the union to
// keep the documented "sorted" contract.
func (s *shardedRelation) Objects(label uint64) []uint64 {
	out := fanout.Gather(len(s.shards), func(i int) []uint64 {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.rel.Objects(label)
	})
	slices.Sort(out)
	return out
}

func (s *shardedRelation) CountLabels(object uint64) int {
	sh := s.shard(object)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.rel.CountLabels(object)
}

func (s *shardedRelation) CountObjects(label uint64) int {
	var total atomic.Int64
	fanout.ForEach(len(s.shards), func(i int) {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		total.Add(int64(sh.rel.CountObjects(label)))
	})
	return int(total.Load())
}

func (s *shardedRelation) Pairs() []binrel.Pair {
	return fanout.Gather(len(s.shards), func(i int) []binrel.Pair {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.rel.Pairs()
	})
}

func (s *shardedRelation) PairsFunc(fn func(binrel.Pair) bool) {
	fanout.FanOut(len(s.shards), func(i int, emit func(binrel.Pair) bool) {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		sh.rel.PairsFunc(emit)
	}, fn)
}

func (s *shardedRelation) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.rel.Len()
		sh.mu.RUnlock()
	}
	return n
}

// Tau reads shard 0's τ under its lock: all shards share a config, but
// the amortized relation retunes τ during cascades, so an unlocked read
// would race with a writer on that shard.
func (s *shardedRelation) Tau() int {
	sh := s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.rel.Tau()
}

func (s *shardedRelation) SizeBits() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.rel.SizeBits()
		sh.mu.RUnlock()
	}
	return n
}

// WaitIdle quiesces every shard's background rebuild pipeline (a no-op
// per shard under the amortized scheduling).
func (s *shardedRelation) WaitIdle() {
	for _, sh := range s.shards {
		sh.rel.WaitIdle()
	}
}

// Stats aggregates per-shard engine stats through aggStats.
func (s *shardedRelation) Stats() binrel.Stats {
	return aggStats(len(s.shards), func(i int) core.Stats {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.rel.Stats()
	})
}

// --- Graph ---

// graphShard is one partition of a sharded graph, keyed by edge source.
type graphShard struct {
	mu sync.RWMutex
	g  *graph.Graph
}

// shardedGraph implements graphImpl over p graph shards keyed by edge
// source u: out-edge operations route to shard(u); in-edge queries
// (Predecessors, InDegree, …) fan out, since u→v edges with the same v
// live wherever their u hashes.
type shardedGraph struct {
	shards []*graphShard
}

func newShardedGraph(cfg config) *shardedGraph {
	s := &shardedGraph{shards: make([]*graphShard, cfg.shards)}
	for i := range s.shards {
		s.shards[i] = &graphShard{g: newGraphImpl(cfg)}
	}
	return s
}

func (s *shardedGraph) shard(u uint64) *graphShard {
	return s.shards[shardOf(u, len(s.shards))]
}

func (s *shardedGraph) AddEdge(u, v uint64) bool {
	sh := s.shard(u)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.g.AddEdge(u, v)
}

func (s *shardedGraph) DeleteEdge(u, v uint64) bool {
	sh := s.shard(u)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.g.DeleteEdge(u, v)
}

func (s *shardedGraph) HasEdge(u, v uint64) bool {
	sh := s.shard(u)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.g.HasEdge(u, v)
}

func (s *shardedGraph) EdgeCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.g.EdgeCount()
		sh.mu.RUnlock()
	}
	return n
}

func (s *shardedGraph) NeighborsFunc(u uint64, fn func(v uint64) bool) {
	sh := s.shard(u)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sh.g.NeighborsFunc(u, fn)
}

// ReverseNeighborsFunc fans out across all shards in parallel: an edge
// into v may originate from a source on any shard. Order is unspecified.
func (s *shardedGraph) ReverseNeighborsFunc(v uint64, fn func(u uint64) bool) {
	fanout.FanOut(len(s.shards), func(i int, emit func(uint64) bool) {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		sh.g.ReverseNeighborsFunc(v, emit)
	}, fn)
}

func (s *shardedGraph) Neighbors(u uint64) []uint64 {
	sh := s.shard(u)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.g.Neighbors(u)
}

// ReverseNeighbors gathers per-shard results in parallel and sorts the
// union to keep the documented "sorted" contract.
func (s *shardedGraph) ReverseNeighbors(v uint64) []uint64 {
	out := fanout.Gather(len(s.shards), func(i int) []uint64 {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.g.ReverseNeighbors(v)
	})
	slices.Sort(out)
	return out
}

func (s *shardedGraph) OutDegree(u uint64) int {
	sh := s.shard(u)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.g.OutDegree(u)
}

func (s *shardedGraph) InDegree(v uint64) int {
	var total atomic.Int64
	fanout.ForEach(len(s.shards), func(i int) {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		total.Add(int64(sh.g.InDegree(v)))
	})
	return int(total.Load())
}

func (s *shardedGraph) Edges() []binrel.Pair {
	return fanout.Gather(len(s.shards), func(i int) []binrel.Pair {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.g.Edges()
	})
}

func (s *shardedGraph) EdgesFunc(fn func(binrel.Pair) bool) {
	fanout.FanOut(len(s.shards), func(i int, emit func(binrel.Pair) bool) {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		sh.g.EdgesFunc(emit)
	}, fn)
}

func (s *shardedGraph) WaitIdle() {
	for _, sh := range s.shards {
		sh.g.WaitIdle()
	}
}

// Stats aggregates per-shard engine stats through aggStats.
func (s *shardedGraph) Stats() binrel.Stats {
	return aggStats(len(s.shards), func(i int) core.Stats {
		sh := s.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.g.Stats()
	})
}

func (s *shardedGraph) SizeBits() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.g.SizeBits()
		sh.mu.RUnlock()
	}
	return n
}
