package dyncoll

import (
	"flag"
	"fmt"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata/golden_v1.snap and golden_v2.snap")

// goldenCollection builds the fixed structure the golden snapshot
// holds. Changing this corpus requires regenerating the golden file
// (go test -run TestGoldenSnapshot -update-golden) and re-pinning the
// assertions below.
func goldenCollection(t *testing.T) *Collection {
	t.Helper()
	c := mustCollection(t,
		WithIndex(IndexFM),
		WithTransformation(WorstCase),
		WithSyncRebuilds(),
		WithMinCapacity(16),
		WithTau(4),
	)
	for i := uint64(1); i <= 24; i++ {
		mustInsert(t, c, Document{ID: i, Data: []byte(fmt.Sprintf("golden abracadabra %d", i))})
	}
	for _, id := range []uint64{5, 12} {
		if err := c.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitIdle()
	return c
}

// TestGoldenSnapshotCompat pins the version-1 snapshot format: the
// committed golden file must keep loading, with the exact query answers
// recorded when it was written. A failure here means the format changed
// incompatibly — bump snap.Version and write a migration path instead
// of regenerating the golden file in place.
func TestGoldenSnapshotCompat(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.snap")
	if *updateGolden {
		c := goldenCollection(t)
		if err := c.SaveFile(path); err != nil {
			t.Fatalf("regenerating golden: %v", err)
		}
		t.Logf("rewrote %s", path)
	}

	c := mustCollection(t)
	if err := c.LoadFile(path); err != nil {
		t.Fatalf("golden snapshot no longer loads: %v", err)
	}
	if got := c.DocCount(); got != 22 {
		t.Fatalf("DocCount = %d, want 22", got)
	}
	if got := c.Len(); got != 454 {
		t.Fatalf("Len = %d, want 454", got)
	}
	if got := c.Count([]byte("abracadabra")); got != 22 {
		t.Fatalf("Count(abracadabra) = %d, want 22", got)
	}
	if got := c.Count([]byte("golden")); got != 22 {
		t.Fatalf("Count(golden) = %d, want 22", got)
	}
	if got := c.Count([]byte(" 1")); got != 10 {
		t.Fatalf("Count(\" 1\") = %d, want 10", got)
	}
	if c.Has(5) || c.Has(12) || !c.Has(24) {
		t.Fatal("deleted/live document state diverges from the golden corpus")
	}
	data, ok := c.Extract(7, 0, 6)
	if !ok || string(data) != "golden" {
		t.Fatalf("Extract(7) = %q, %v", data, ok)
	}
	// The loaded structure answers exactly like a freshly built one.
	collectionsEqual(t, "golden", goldenCollection(t), c)
}

// TestGoldenMappedCompat pins the version-2 (mapped) container layout:
// the committed golden file must keep opening in place, with the same
// answers the v1 golden records. A failure means the section-directory
// layout or a store's mapped encoding changed incompatibly — bump
// snap.VersionV2 and write a migration path instead of regenerating the
// golden file in place.
func TestGoldenMappedCompat(t *testing.T) {
	path := filepath.Join("testdata", "golden_v2.snap")
	if *updateGolden {
		c := goldenCollection(t)
		if err := c.SaveMappedFile(path); err != nil {
			t.Fatalf("regenerating mapped golden: %v", err)
		}
		t.Logf("rewrote %s", path)
	}

	c, err := OpenMappedCollection(path, MappedVerify())
	if err != nil {
		t.Fatalf("golden mapped snapshot no longer opens: %v", err)
	}
	defer c.Close()
	if got := c.DocCount(); got != 22 {
		t.Fatalf("DocCount = %d, want 22", got)
	}
	if got := c.Len(); got != 454 {
		t.Fatalf("Len = %d, want 454", got)
	}
	if got := c.Count([]byte("abracadabra")); got != 22 {
		t.Fatalf("Count(abracadabra) = %d, want 22", got)
	}
	if c.Has(5) || c.Has(12) || !c.Has(24) {
		t.Fatal("deleted/live document state diverges from the golden corpus")
	}
	data, ok := c.Extract(7, 0, 6)
	if !ok || string(data) != "golden" {
		t.Fatalf("Extract(7) = %q, %v", data, ok)
	}
	collectionsEqual(t, "golden-mapped", goldenCollection(t), c)
}
