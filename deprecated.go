package dyncoll

import (
	"fmt"

	"dyncoll/internal/binrel"
	"dyncoll/internal/graph"
)

// This file keeps thin shims over the v1 option structs: the struct
// types and their constructors remain available under new
// …FromOptions names. Method signatures are NOT shimmed — v1
// bool-returning updates (Insert, Delete, Add, AddEdge) now return
// typed errors, so v1 call sites testing those results need the
// one-line migration to errors.Is. New code should use the functional
// options (NewCollection, NewRelation, NewGraph with With… options).
//
// The v1 structs predate sharding and always build unsharded,
// externally-serialized structures; concurrent access requires the
// functional-options constructors with WithShards.

// IndexKind selects the static index that compressed sub-collections are
// built from.
//
// Deprecated: static indexes are now chosen by registry name — use
// WithIndex with IndexFM, IndexSA, IndexCSA, or any name added via
// RegisterIndex.
type IndexKind int

const (
	// CompressedFM is the nHk-space FM-index.
	//
	// Deprecated: use WithIndex(IndexFM).
	CompressedFM IndexKind = iota
	// PlainSA is the O(n log σ)-bit suffix-array index.
	//
	// Deprecated: use WithIndex(IndexSA).
	PlainSA
	// CompressedCSA is the Ψ-based compressed suffix array.
	//
	// Deprecated: use WithIndex(IndexCSA).
	CompressedCSA
)

// name maps the v1 enum onto the registry namespace. Out-of-range
// values fail with ErrUnknownIndex — the options contract promises that
// invalid configuration is never silently ignored, and the old default
// branch mapped e.g. IndexKind(7) to the FM index without a word.
func (k IndexKind) name() (string, error) {
	switch k {
	case CompressedFM:
		return IndexFM, nil
	case PlainSA:
		return IndexSA, nil
	case CompressedCSA:
		return IndexCSA, nil
	default:
		return "", fmt.Errorf("dyncoll: %w: IndexKind(%d)", ErrUnknownIndex, int(k))
	}
}

// CollectionOptions is the v1 option struct for NewCollectionFromOptions.
// The zero value gives the paper's defaults: Transformation 2 over the
// compressed FM-index with automatic τ.
//
// Deprecated: use NewCollection with functional options.
type CollectionOptions struct {
	// Transformation picks the update-cost regime. Default WorstCase.
	Transformation Transformation
	// Index picks the underlying static index. Default CompressedFM.
	Index IndexKind
	// SampleRate is the suffix-array sampling rate s of the FM-index.
	SampleRate int
	// Tau is the paper's lazy-deletion parameter τ; 0 = automatic.
	Tau int
	// Counting attaches Theorem 1's counting structures.
	Counting bool
	// SyncRebuilds forces WorstCase background rebuilds to complete
	// synchronously.
	SyncRebuilds bool
}

// NewCollectionFromOptions creates a collection from the v1 option
// struct. It fails with ErrUnknownIndex when Index is not one of the
// enum's values — the zero value and the named constants remain valid —
// and ErrInvalidOption on an out-of-range Transformation or Tau.
//
// Deprecated: use NewCollection with functional options.
func NewCollectionFromOptions(o CollectionOptions) (*Collection, error) {
	name, err := o.Index.name()
	if err != nil {
		return nil, err
	}
	switch o.Transformation {
	case WorstCase, Amortized, AmortizedFastInsert:
	default:
		return nil, fmt.Errorf("dyncoll: %w: unknown Transformation %d", ErrInvalidOption, int(o.Transformation))
	}
	if o.Tau < 0 {
		return nil, fmt.Errorf("dyncoll: %w: negative tau %d", ErrInvalidOption, o.Tau)
	}
	if o.SampleRate < 0 {
		return nil, fmt.Errorf("dyncoll: %w: negative sample rate %d", ErrInvalidOption, o.SampleRate)
	}
	return newCollection(config{
		kind:           kindCollection,
		transformation: o.Transformation,
		index:          name,
		sampleRate:     o.SampleRate,
		tau:            o.Tau,
		counting:       o.Counting,
		syncRebuilds:   o.SyncRebuilds,
	})
}

// RelationOptions is the v1 option struct for NewRelationFromOptions.
//
// Deprecated: use NewRelation with functional options.
type RelationOptions = binrel.Options

// v1RelConfig mirrors a v1 relation/graph option struct into the
// resolved config the facade records (and snapshots serialize).
func v1RelConfig(kind structKind, tau int, epsilon float64, minCap int, worstCase, inline bool) config {
	tr := Amortized
	if worstCase {
		tr = WorstCase
	}
	return config{
		kind:           kind,
		transformation: tr,
		tau:            tau,
		epsilon:        epsilon,
		minCapacity:    minCap,
		syncRebuilds:   inline,
	}
}

// NewRelationFromOptions creates an amortized relation from the v1
// option struct.
//
// Deprecated: use NewRelation with functional options.
func NewRelationFromOptions(o RelationOptions) *Relation {
	return &Relation{
		rel: binrel.New(o),
		cfg: v1RelConfig(kindRelation, o.Tau, o.Epsilon, o.MinCapacity, o.WorstCase, o.Inline),
	}
}

// WorstCaseRelation is a Relation with Transformation 2-style update
// scheduling: bounded foreground work per update, rebuilds in the
// background (the paper's Theorem 2 update bound).
//
// Deprecated: use NewRelation(WithTransformation(WorstCase)); the
// unified Relation exposes WaitIdle for quiescing.
type WorstCaseRelation = Relation

// WorstCaseRelationOptions is the v1 option struct for
// NewWorstCaseRelation.
//
// Deprecated: use NewRelation with functional options.
type WorstCaseRelationOptions = binrel.WCOptions

// NewWorstCaseRelation creates an empty worst-case dynamic relation from
// the v1 option struct.
//
// Deprecated: use NewRelation(WithTransformation(WorstCase), …).
func NewWorstCaseRelation(o WorstCaseRelationOptions) *WorstCaseRelation {
	return &Relation{
		rel: binrel.NewWorstCase(o),
		cfg: v1RelConfig(kindRelation, o.Tau, o.Epsilon, o.MinCapacity, true, o.Inline),
	}
}

// GraphOptions is the v1 option struct for NewGraphFromOptions.
//
// Deprecated: use NewGraph with functional options.
type GraphOptions = graph.Options

// NewGraphFromOptions creates a graph from the v1 option struct.
//
// Deprecated: use NewGraph with functional options.
func NewGraphFromOptions(o GraphOptions) *Graph {
	return &Graph{
		g:   graph.New(o),
		cfg: v1RelConfig(kindGraph, o.Tau, o.Epsilon, o.MinCapacity, o.WorstCase, o.Inline),
	}
}
