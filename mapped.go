package dyncoll

// The v2 ("mapped") snapshot facade. A v1 snapshot is one varint
// stream that Load decodes element by element into freshly allocated
// heap, so opening costs O(corpus) time and O(corpus) resident memory
// before the first query. A v2 snapshot is a sectioned container
// (internal/snap.V2Writer): every static store's heavy payload —
// wavelet levels, rank/select directories, sample arrays, suffix
// tables — is a page-aligned section laid out in the fixed-width
// MapView format, and LoadMappedFile mmaps the file and serves queries
// directly from the mapping. Open work is the section directory, the
// spines, and O(σ + n/512) structural validation per store; the
// corpus-sized arrays are never touched until a query faults their
// pages in, so cold open is effectively corpus-size independent and a
// collection larger than RAM is servable.
//
// Mutations stay fully supported after a mapped open: C0 and every
// rebuild live in ordinary heap, and when a rebuild supersedes a
// mapped store the garbage collector's finalizer on that store tells
// the mapping to release its pages (madvise DONTNEED), so a mapped
// structure that is written to gradually migrates off the file.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"dyncoll/internal/binrel"
	"dyncoll/internal/core"
	"dyncoll/internal/mmap"
	"dyncoll/internal/snap"
)

// collMappedImpl is implemented by the unsharded collection core.
type collMappedImpl interface {
	DumpMapped() ([]byte, []core.MappedStore)
	RestoreMapped(spine []byte, stores []core.MappedStore, open core.IndexOpener, retain core.RetainFunc) error
}

// relMappedImpl is implemented by the unsharded relation and graph
// cores.
type relMappedImpl interface {
	DumpMapped() ([]byte, []binrel.MappedStore)
	RestoreMapped(spine []byte, stores []binrel.MappedStore, retain binrel.RetainFunc) error
}

// MappedOption configures a mapped open.
type MappedOption func(*mappedOpenConfig)

type mappedOpenConfig struct {
	verify bool
}

// MappedVerify makes the open CRC-check every payload section before
// serving from it. The default open verifies only the directory and
// metadata sections (O(1) in the corpus) and trusts payload bytes
// after structural validation; with MappedVerify the open reads the
// whole file once — O(corpus) time, though still no decoded heap copy.
func MappedVerify() MappedOption {
	return func(c *mappedOpenConfig) { c.verify = true }
}

// mappedFile owns one mmapped snapshot and the residency accounting
// over it. Each store opened in place retains its payload range; a
// finalizer on the store releases the range when the engine drops the
// store (superseded by a rebuild, or the whole structure reloaded), at
// which point the pages are madvised away. live is the sum of retained
// payload bytes — what Stats reports as MappedBytes.
type mappedFile struct {
	mu     sync.Mutex
	m      *mmap.Mapping
	live   int64
	closed bool
}

// retainFunc adapts the file into the core/binrel retain contract. The
// finalizer closure deliberately captures only the payload slice and
// the file — capturing the store would keep it reachable forever.
func (f *mappedFile) retainFunc() func(payload []byte, store any) {
	return func(payload []byte, store any) {
		if len(payload) == 0 || store == nil {
			return
		}
		f.mu.Lock()
		f.live += int64(len(payload))
		f.mu.Unlock()
		p := payload
		runtime.SetFinalizer(store, func(any) { f.release(p) })
	}
}

func (f *mappedFile) release(p []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.live -= int64(len(p))
	if !f.closed && f.m != nil {
		f.m.DontNeed(p)
	}
}

func (f *mappedFile) mappedBytes() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.live
}

func (f *mappedFile) close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	runtime.SetFinalizer(f, nil)
	if f.m == nil {
		return nil
	}
	return f.m.Close()
}

// openMappedFile maps path and hands ownership to load; the mapping is
// torn down on any load error. The descriptor itself can be closed
// immediately — a mapping outlives its file.
func openMappedFile(path string, load func(data []byte, mf *mappedFile) error) (*mappedFile, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	m, err := mmap.Open(file)
	file.Close()
	if err != nil {
		return nil, err
	}
	mf := &mappedFile{m: m}
	runtime.SetFinalizer(mf, func(f *mappedFile) { f.close() })
	if err := load(m.Data(), mf); err != nil {
		mf.close()
		return nil, err
	}
	return mf, nil
}

// mappedShardSecs is one shard's worth of v2 sections: the spine plus
// parallel meta/payload tables indexed by store ordinal (payloads has
// nil holes where a store was serialized as raw items).
type mappedShardSecs struct {
	spine    []byte
	metas    [][]byte
	payloads [][]byte
}

func (s *mappedShardSecs) check(shard int) error {
	if s.spine == nil {
		return snap.Corruptf("shard %d has no spine section", shard)
	}
	for k, m := range s.metas {
		if m == nil {
			return snap.Corruptf("shard %d missing store meta %d", shard, k)
		}
	}
	if len(s.payloads) > len(s.metas) {
		return snap.Corruptf("shard %d has payload sections beyond its %d stores", shard, len(s.metas))
	}
	return nil
}

func (s *mappedShardSecs) payloadAt(k int) []byte {
	if k < len(s.payloads) {
		return s.payloads[k]
	}
	return nil
}

func (s *mappedShardSecs) coreStores() []core.MappedStore {
	out := make([]core.MappedStore, len(s.metas))
	for k, m := range s.metas {
		out[k] = core.MappedStore{Meta: m, Payload: s.payloadAt(k)}
	}
	return out
}

func (s *mappedShardSecs) relStores() []binrel.MappedStore {
	out := make([]binrel.MappedStore, len(s.metas))
	for k, m := range s.metas {
		out[k] = binrel.MappedStore{Meta: m, Payload: s.payloadAt(k)}
	}
	return out
}

// setSection places b at index i of *dst, growing it with nil holes.
// limit (the total entry count) bounds indexes so a corrupt directory
// cannot force a huge allocation.
func setSection(dst *[][]byte, i int, b []byte, limit int, what string) error {
	if i >= limit {
		return snap.Corruptf("%s index %d out of range", what, i)
	}
	for len(*dst) <= i {
		*dst = append(*dst, nil)
	}
	if (*dst)[i] != nil {
		return snap.Corruptf("duplicate %s section %d", what, i)
	}
	(*dst)[i] = b
	return nil
}

// splitV2 walks the section directory into the header blob and the
// per-shard section groups. Shape errors (duplicates, out-of-range
// indexes, unknown kinds) fail here; per-shard completeness is checked
// by mappedShardSecs.check once the header says how many shards to
// expect.
func splitV2(f *snap.V2File) (header []byte, shards []mappedShardSecs, err error) {
	limit := len(f.Entries)
	grow := func(shard int) (*mappedShardSecs, error) {
		if shard >= limit {
			return nil, snap.Corruptf("section shard %d out of range", shard)
		}
		for len(shards) <= shard {
			shards = append(shards, mappedShardSecs{})
		}
		return &shards[shard], nil
	}
	for _, e := range f.Entries {
		body := f.Section(e)
		if body == nil { // zero-length sections still need a non-nil marker
			body = []byte{}
		}
		switch e.Kind {
		case snap.SecHeader:
			if e.Shard != 0 || e.Ordinal != 0 {
				return nil, nil, snap.Corruptf("header section at shard %d ordinal %d", e.Shard, e.Ordinal)
			}
			if header != nil {
				return nil, nil, snap.Corruptf("duplicate header section")
			}
			header = body
		case snap.SecSpine:
			s, err := grow(int(e.Shard))
			if err != nil {
				return nil, nil, err
			}
			if e.Ordinal != 0 {
				return nil, nil, snap.Corruptf("spine ordinal %d", e.Ordinal)
			}
			if s.spine != nil {
				return nil, nil, snap.Corruptf("duplicate spine for shard %d", e.Shard)
			}
			s.spine = body
		case snap.SecStoreMeta:
			s, err := grow(int(e.Shard))
			if err != nil {
				return nil, nil, err
			}
			if err := setSection(&s.metas, int(e.Ordinal), body, limit, "store meta"); err != nil {
				return nil, nil, err
			}
		case snap.SecStorePayload:
			s, err := grow(int(e.Shard))
			if err != nil {
				return nil, nil, err
			}
			if err := setSection(&s.payloads, int(e.Ordinal), body, limit, "store payload"); err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, snap.Corruptf("unknown section kind %d", e.Kind)
		}
	}
	if header == nil {
		return nil, nil, snap.Corruptf("no header section")
	}
	return header, shards, nil
}

// openV2Snapshot is the shared front half of every mapped load: open
// the container, optionally CRC the payloads, decode and validate the
// header for kind, and group the sections per shard.
func openV2Snapshot(data []byte, kind structKind, oc mappedOpenConfig) (config, []mappedShardSecs, error) {
	var zero config
	v2, err := snap.OpenV2(data)
	if err != nil {
		return zero, nil, err
	}
	if oc.verify {
		if err := v2.VerifyPayloads(); err != nil {
			return zero, nil, err
		}
	}
	header, shards, err := splitV2(v2)
	if err != nil {
		return zero, nil, err
	}
	dec := snap.NewDecoder(header)
	cfg, err := decodeHeader(dec, kind)
	if err != nil {
		return zero, nil, err
	}
	if n := dec.Remaining(); n != 0 {
		return zero, nil, snap.Corruptf("%d trailing header bytes", n)
	}
	want := max(cfg.shards, 1)
	if len(shards) != want {
		return zero, nil, snap.Corruptf("%d shard section groups for %d shards", len(shards), want)
	}
	for i := range shards {
		if err := shards[i].check(i); err != nil {
			return zero, nil, err
		}
	}
	return cfg, shards, nil
}

// mappedDump is one shard's DumpMapped output in neutral form.
type mappedDump struct {
	spine  []byte
	stores []struct{ meta, payload []byte }
}

// writeMappedSnapshot lays the header, spines and store sections into
// a v2 container and writes it to path atomically (temp file +
// rename, like SaveFile).
func writeMappedSnapshot(path string, cfg config, dumps []mappedDump) error {
	w := snap.NewV2Writer()
	he := &snap.Encoder{}
	encodeHeader(he, cfg)
	w.Add(snap.SecHeader, 0, 0, he.Bytes())
	for i, d := range dumps {
		w.Add(snap.SecSpine, uint32(i), 0, d.spine)
		for k, st := range d.stores {
			w.Add(snap.SecStoreMeta, uint32(i), uint32(k), st.meta)
			if len(st.payload) > 0 {
				w.Add(snap.SecStorePayload, uint32(i), uint32(k), st.payload)
			}
		}
	}
	return atomicWriteFile(path, func(out io.Writer) error {
		_, err := w.WriteTo(out)
		return err
	})
}

func coreDump(spine []byte, stores []core.MappedStore) mappedDump {
	d := mappedDump{spine: spine}
	for _, st := range stores {
		d.stores = append(d.stores, struct{ meta, payload []byte }{st.Meta, st.Payload})
	}
	return d
}

func relDump(spine []byte, stores []binrel.MappedStore) mappedDump {
	d := mappedDump{spine: spine}
	for _, st := range stores {
		d.stores = append(d.stores, struct{ meta, payload []byte }{st.Meta, st.Payload})
	}
	return d
}

// --- Collection ---

// SaveMappedFile writes the collection as a v2 mapped snapshot — the
// sectioned, page-aligned layout that LoadMappedFile and
// OpenMappedCollection serve in place via mmap. Quiescing and locking
// match Save. Stores whose index type has no mapped layout (custom
// registry indexes) are embedded as raw items and rebuilt at open, so
// the file is complete either way. v1 Save/Load and v2 files are
// distinct formats, each rejecting the other's magic.
func (c *Collection) SaveMappedFile(path string) error {
	var impls []collMappedImpl
	if sh, ok := c.impl.(*shardedColl); ok {
		for _, s := range sh.shards {
			s.mu.RLock()
		}
		defer func() {
			for _, s := range sh.shards {
				s.mu.RUnlock()
			}
		}()
		for _, s := range sh.shards {
			mi, ok := s.impl.(collMappedImpl)
			if !ok {
				return fmt.Errorf("dyncoll: collection does not support mapped snapshots")
			}
			impls = append(impls, mi)
		}
	} else {
		mi, ok := c.impl.(collMappedImpl)
		if !ok {
			return fmt.Errorf("dyncoll: collection does not support mapped snapshots")
		}
		impls = []collMappedImpl{mi}
	}
	dumps := make([]mappedDump, len(impls))
	if err := parallelShards(len(impls), func(i int) error {
		dumps[i] = coreDump(impls[i].DumpMapped())
		return nil
	}); err != nil {
		return err
	}
	return writeMappedSnapshot(path, c.cfg, dumps)
}

// LoadMappedFile replaces the collection with the v2 snapshot at path,
// serving static stores directly from a read-only mapping of the file.
// Open cost is independent of corpus size: the directory, spines and
// alphabet/directory-sized validation are read, the corpus-sized
// payload arrays are not (pass MappedVerify to CRC them up front). The
// error contract matches Load — ErrUnknownIndex for an unregistered
// index, ErrBadSnapshot for corrupt bytes, receiver unchanged on
// error. The collection stays fully mutable afterwards; pages of
// stores that rebuilds supersede are released back to the OS as the
// collector retires them. Not safe to call concurrently with other
// operations on the receiver.
func (c *Collection) LoadMappedFile(path string, opts ...MappedOption) error {
	mf, err := openMappedFile(path, func(data []byte, mf *mappedFile) error {
		return c.loadMapped(data, mf, opts...)
	})
	if err != nil {
		return err
	}
	c.mapped = mf
	return nil
}

func (c *Collection) loadMapped(data []byte, mf *mappedFile, opts ...MappedOption) (err error) {
	defer guard(&err)
	var oc mappedOpenConfig
	for _, o := range opts {
		o(&oc)
	}
	cfg, shards, err := openV2Snapshot(data, kindCollection, oc)
	if err != nil {
		return err
	}
	if _, err := lookupIndex(cfg.index); err != nil {
		return err
	}
	open := lookupMappedOpener(cfg.index)
	impl, err := newCollAnyImpl(cfg)
	if err != nil {
		return err
	}
	retain := mf.retainFunc()
	restore := func(ci collImpl, secs *mappedShardSecs) (err error) {
		defer guard(&err)
		mi, ok := ci.(collMappedImpl)
		if !ok {
			return fmt.Errorf("dyncoll: collection does not support mapped snapshots")
		}
		return mi.RestoreMapped(secs.spine, secs.coreStores(), open, retain)
	}
	if sh, ok := impl.(*shardedColl); ok {
		if err := parallelShards(len(sh.shards), func(i int) error {
			return restore(sh.shards[i].impl, &shards[i])
		}); err != nil {
			return err
		}
	} else {
		if err := restore(impl, &shards[0]); err != nil {
			return err
		}
	}
	c.impl, c.cfg = impl, cfg
	return nil
}

// OpenMappedCollection opens the v2 snapshot at path as a new
// collection; see Collection.LoadMappedFile.
func OpenMappedCollection(path string, opts ...MappedOption) (*Collection, error) {
	c, err := NewCollection()
	if err != nil {
		return nil, err
	}
	if err := c.LoadMappedFile(path, opts...); err != nil {
		return nil, err
	}
	return c, nil
}

// Close releases the snapshot mapping behind a mapped collection,
// first swapping in an empty in-heap structure so no reachable store
// aliases the mapping. A collection that was never mapped closes as a
// no-op. Close is not safe to call concurrently with queries — any
// still running against the old mapped stores would fault.
func (c *Collection) Close() error {
	mf := c.mapped
	c.mapped = nil
	if mf == nil {
		return nil
	}
	if impl, err := newCollAnyImpl(c.cfg); err == nil {
		c.impl = impl
	}
	return mf.close()
}

// --- Relation ---

// relMappedImpls collects the per-shard mapped cores of a relation or
// graph impl, taking every shard read lock; unlock releases them.
func relMappedImpls(impl any) (impls []relMappedImpl, unlock func(), err error) {
	unlock = func() {}
	switch sh := impl.(type) {
	case *shardedRelation:
		for _, s := range sh.shards {
			s.mu.RLock()
		}
		unlock = func() {
			for _, s := range sh.shards {
				s.mu.RUnlock()
			}
		}
		for _, s := range sh.shards {
			mi, ok := s.rel.(relMappedImpl)
			if !ok {
				unlock()
				return nil, func() {}, fmt.Errorf("dyncoll: relation does not support mapped snapshots")
			}
			impls = append(impls, mi)
		}
	case *shardedGraph:
		for _, s := range sh.shards {
			s.mu.RLock()
		}
		unlock = func() {
			for _, s := range sh.shards {
				s.mu.RUnlock()
			}
		}
		for _, s := range sh.shards {
			impls = append(impls, s.g)
		}
	default:
		mi, ok := impl.(relMappedImpl)
		if !ok {
			return nil, unlock, fmt.Errorf("dyncoll: structure does not support mapped snapshots")
		}
		impls = []relMappedImpl{mi}
	}
	return impls, unlock, nil
}

// saveMappedRel is the shared save path for relations and graphs.
func saveMappedRel(path string, cfg config, impl any) error {
	impls, unlock, err := relMappedImpls(impl)
	if err != nil {
		return err
	}
	defer unlock()
	dumps := make([]mappedDump, len(impls))
	if err := parallelShards(len(impls), func(i int) error {
		dumps[i] = relDump(impls[i].DumpMapped())
		return nil
	}); err != nil {
		return err
	}
	return writeMappedSnapshot(path, cfg, dumps)
}

// SaveMappedFile writes the relation as a v2 mapped snapshot; see
// Collection.SaveMappedFile.
func (r *Relation) SaveMappedFile(path string) error {
	return saveMappedRel(path, r.cfg, r.rel)
}

// LoadMappedFile replaces the relation with the v2 snapshot at path,
// served in place from a read-only mapping; see
// Collection.LoadMappedFile for the open-cost and error contract.
func (r *Relation) LoadMappedFile(path string, opts ...MappedOption) error {
	mf, err := openMappedFile(path, func(data []byte, mf *mappedFile) error {
		return r.loadMapped(data, mf, opts...)
	})
	if err != nil {
		return err
	}
	r.mapped = mf
	return nil
}

func (r *Relation) loadMapped(data []byte, mf *mappedFile, opts ...MappedOption) (err error) {
	defer guard(&err)
	var oc mappedOpenConfig
	for _, o := range opts {
		o(&oc)
	}
	cfg, shards, err := openV2Snapshot(data, kindRelation, oc)
	if err != nil {
		return err
	}
	impl := newRelAnyImpl(cfg)
	if err := restoreMappedRel(impl, shards, mf); err != nil {
		return err
	}
	r.rel, r.cfg = impl, cfg
	return nil
}

// restoreMappedRel installs shard section groups into a fresh relation
// or graph impl.
func restoreMappedRel(impl any, shards []mappedShardSecs, mf *mappedFile) error {
	retain := mf.retainFunc()
	restore := func(ri any, secs *mappedShardSecs) (err error) {
		defer guard(&err)
		mi, ok := ri.(relMappedImpl)
		if !ok {
			return fmt.Errorf("dyncoll: structure does not support mapped snapshots")
		}
		return mi.RestoreMapped(secs.spine, secs.relStores(), retain)
	}
	switch sh := impl.(type) {
	case *shardedRelation:
		return parallelShards(len(sh.shards), func(i int) error {
			return restore(sh.shards[i].rel, &shards[i])
		})
	case *shardedGraph:
		return parallelShards(len(sh.shards), func(i int) error {
			return restore(sh.shards[i].g, &shards[i])
		})
	default:
		return restore(impl, &shards[0])
	}
}

// OpenMappedRelation opens the v2 snapshot at path as a new relation;
// see Relation.LoadMappedFile.
func OpenMappedRelation(path string, opts ...MappedOption) (*Relation, error) {
	r, err := NewRelation()
	if err != nil {
		return nil, err
	}
	if err := r.LoadMappedFile(path, opts...); err != nil {
		return nil, err
	}
	return r, nil
}

// Close releases the snapshot mapping behind a mapped relation; see
// Collection.Close.
func (r *Relation) Close() error {
	mf := r.mapped
	r.mapped = nil
	if mf == nil {
		return nil
	}
	r.rel = newRelAnyImpl(r.cfg)
	return mf.close()
}

// --- Graph ---

// SaveMappedFile writes the graph as a v2 mapped snapshot; see
// Collection.SaveMappedFile.
func (g *Graph) SaveMappedFile(path string) error {
	return saveMappedRel(path, g.cfg, g.g)
}

// LoadMappedFile replaces the graph with the v2 snapshot at path,
// served in place from a read-only mapping; see
// Collection.LoadMappedFile for the open-cost and error contract.
func (g *Graph) LoadMappedFile(path string, opts ...MappedOption) error {
	mf, err := openMappedFile(path, func(data []byte, mf *mappedFile) error {
		return g.loadMapped(data, mf, opts...)
	})
	if err != nil {
		return err
	}
	g.mapped = mf
	return nil
}

func (g *Graph) loadMapped(data []byte, mf *mappedFile, opts ...MappedOption) (err error) {
	defer guard(&err)
	var oc mappedOpenConfig
	for _, o := range opts {
		o(&oc)
	}
	cfg, shards, err := openV2Snapshot(data, kindGraph, oc)
	if err != nil {
		return err
	}
	impl := newGraphAnyImpl(cfg)
	if err := restoreMappedRel(impl, shards, mf); err != nil {
		return err
	}
	g.g, g.cfg = impl, cfg
	return nil
}

// OpenMappedGraph opens the v2 snapshot at path as a new graph; see
// Graph.LoadMappedFile.
func OpenMappedGraph(path string, opts ...MappedOption) (*Graph, error) {
	gr, err := NewGraph()
	if err != nil {
		return nil, err
	}
	if err := gr.LoadMappedFile(path, opts...); err != nil {
		return nil, err
	}
	return gr, nil
}

// Close releases the snapshot mapping behind a mapped graph; see
// Collection.Close.
func (g *Graph) Close() error {
	mf := g.mapped
	g.mapped = nil
	if mf == nil {
		return nil
	}
	g.g = newGraphAnyImpl(g.cfg)
	return mf.close()
}
