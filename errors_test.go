package dyncoll

import (
	"bytes"
	"errors"
	"sort"
	"testing"
)

// TestInsertErrorPaths checks the typed errors on every transformation:
// duplicate IDs and reserved bytes, for singles and batches.
func TestInsertErrorPaths(t *testing.T) {
	for _, tr := range []Transformation{Amortized, WorstCase, AmortizedFastInsert} {
		c := mustCollection(t, WithTransformation(tr), WithSyncRebuilds())
		mustInsert(t, c, Document{ID: 1, Data: []byte("abc")})

		if err := c.Insert(Document{ID: 1, Data: []byte("xyz")}); !errors.Is(err, ErrDuplicateID) {
			t.Fatalf("transform %d: duplicate insert: got %v, want ErrDuplicateID", tr, err)
		}
		if err := c.Insert(Document{ID: 2, Data: []byte{1, 0, 2}}); !errors.Is(err, ErrReservedByte) {
			t.Fatalf("transform %d: zero byte: got %v, want ErrReservedByte", tr, err)
		}
		// Batch with an internal duplicate: atomic, nothing inserted.
		err := c.InsertBatch([]Document{
			{ID: 3, Data: []byte("d3")},
			{ID: 3, Data: []byte("d3 again")},
		})
		if !errors.Is(err, ErrDuplicateID) {
			t.Fatalf("transform %d: batch duplicate: got %v", tr, err)
		}
		// Batch colliding with a live ID.
		err = c.InsertBatch([]Document{{ID: 4, Data: []byte("d4")}, {ID: 1, Data: []byte("dup")}})
		if !errors.Is(err, ErrDuplicateID) {
			t.Fatalf("transform %d: batch live duplicate: got %v", tr, err)
		}
		// Batch with a reserved byte.
		err = c.InsertBatch([]Document{{ID: 5, Data: []byte{0}}})
		if !errors.Is(err, ErrReservedByte) {
			t.Fatalf("transform %d: batch zero byte: got %v", tr, err)
		}
		c.WaitIdle()
		if c.DocCount() != 1 {
			t.Fatalf("transform %d: failed operations leaked documents (%d live)", tr, c.DocCount())
		}
		// The collection still works after rejected updates.
		if got := c.Count([]byte("abc")); got != 1 {
			t.Fatalf("transform %d: Count = %d after rejected updates", tr, got)
		}
	}
}

func TestDeleteErrorPaths(t *testing.T) {
	c := mustCollection(t, WithSyncRebuilds())
	if err := c.Delete(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: got %v, want ErrNotFound", err)
	}
	mustInsert(t, c, Document{ID: 42, Data: []byte("x")})
	if err := c.Delete(42); err != nil {
		t.Fatalf("delete live: %v", err)
	}
	if err := c.Delete(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: got %v, want ErrNotFound", err)
	}
}

func TestRelationGraphErrorPaths(t *testing.T) {
	r, err := NewRelation()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(1, 2); !errors.Is(err, ErrDuplicatePair) {
		t.Fatalf("duplicate pair: got %v, want ErrDuplicatePair", err)
	}
	if err := r.Delete(9, 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing pair: got %v, want ErrNotFound", err)
	}

	g, err := NewGraph()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate edge: got %v, want ErrDuplicateEdge", err)
	}
	if err := g.DeleteEdge(9, 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing edge: got %v, want ErrNotFound", err)
	}
}

func TestOptionErrors(t *testing.T) {
	cases := []struct {
		name string
		mk   func() error
		want error
	}{
		{"unknown index", func() error { _, err := NewCollection(WithIndex("no-such-index")); return err }, ErrUnknownIndex},
		{"negative tau", func() error { _, err := NewCollection(WithTau(-1)); return err }, ErrInvalidOption},
		{"negative sample", func() error { _, err := NewCollection(WithSampleRate(-4)); return err }, ErrInvalidOption},
		{"bad epsilon", func() error { _, err := NewCollection(WithEpsilon(1.5)); return err }, ErrInvalidOption},
		{"bad transformation", func() error { _, err := NewCollection(WithTransformation(Transformation(99))); return err }, ErrInvalidOption},
		{"index on relation", func() error { _, err := NewRelation(WithIndex(IndexFM)); return err }, ErrInvalidOption},
		{"counting on graph", func() error { _, err := NewGraph(WithCounting()); return err }, ErrInvalidOption},
		{"fastinsert on relation", func() error { _, err := NewRelation(WithTransformation(AmortizedFastInsert)); return err }, ErrInvalidOption},
	}
	for _, tc := range cases {
		if err := tc.mk(); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestV1IndexKindRejected is the regression test for the silent
// IndexKind fallback: the v1 constructor used to map any out-of-range
// enum value (IndexKind(7), IndexKind(-1), …) onto the FM index through
// its default switch branch, violating the documented "invalid
// configuration is never silently ignored" contract. It must fail with
// ErrUnknownIndex instead, while every documented enum value still
// works.
func TestV1IndexKindRejected(t *testing.T) {
	for _, k := range []IndexKind{IndexKind(7), IndexKind(-1), IndexKind(3)} {
		c, err := NewCollectionFromOptions(CollectionOptions{Index: k})
		if !errors.Is(err, ErrUnknownIndex) {
			t.Fatalf("IndexKind(%d): got (%v, %v), want ErrUnknownIndex", int(k), c, err)
		}
	}
	for _, k := range []IndexKind{CompressedFM, PlainSA, CompressedCSA} {
		c, err := NewCollectionFromOptions(CollectionOptions{Index: k, SyncRebuilds: true})
		if err != nil {
			t.Fatalf("IndexKind(%d): %v", int(k), err)
		}
		if err := c.Insert(Document{ID: 1, Data: []byte("ok")}); err != nil {
			t.Fatalf("IndexKind(%d) insert: %v", int(k), err)
		}
	}
	// The other v1 option fields are validated too, not silently clamped.
	if _, err := NewCollectionFromOptions(CollectionOptions{Transformation: Transformation(9)}); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("bad transformation: got %v, want ErrInvalidOption", err)
	}
	if _, err := NewCollectionFromOptions(CollectionOptions{Tau: -3}); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("negative tau: got %v, want ErrInvalidOption", err)
	}
}

func TestRegisterIndexErrors(t *testing.T) {
	dummy := func(docs []Document, cfg IndexConfig) StaticIndex { return nil }
	if err := RegisterIndex("", dummy); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("empty name: got %v", err)
	}
	if err := RegisterIndex("x-nil", nil); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("nil builder: got %v", err)
	}
	if err := RegisterIndex(IndexFM, dummy); !errors.Is(err, ErrIndexExists) {
		t.Fatalf("re-register built-in: got %v", err)
	}
}

// testIndex is a minimal custom StaticIndex — a sorted table of all
// document suffixes — registered from outside internal/ to prove the
// framework's index-agnosticism end to end.
type testIndex struct {
	docs    []Document
	rows    [][2]int // (docIdx, off), off ≤ len(doc), sorted by suffix
	rank    map[[2]int]int
	symbols int
}

func (x *testIndex) suffix(r [2]int) []byte {
	return append(append([]byte(nil), x.docs[r[0]].Data[r[1]:]...), 0)
}

func buildTestIndex(docs []Document, _ IndexConfig) StaticIndex {
	x := &testIndex{docs: docs, rank: make(map[[2]int]int)}
	for d, dd := range docs {
		x.symbols += len(dd.Data)
		for off := 0; off <= len(dd.Data); off++ {
			x.rows = append(x.rows, [2]int{d, off})
		}
	}
	sort.Slice(x.rows, func(i, j int) bool {
		return bytes.Compare(x.suffix(x.rows[i]), x.suffix(x.rows[j])) < 0
	})
	for pos, r := range x.rows {
		x.rank[r] = pos
	}
	return x
}

func (x *testIndex) SALen() int                { return len(x.rows) }
func (x *testIndex) SymbolCount() int          { return x.symbols }
func (x *testIndex) DocCount() int             { return len(x.docs) }
func (x *testIndex) DocID(i int) uint64        { return x.docs[i].ID }
func (x *testIndex) DocLen(i int) int          { return len(x.docs[i].Data) }
func (x *testIndex) SuffixRank(d, off int) int { return x.rank[[2]int{d, off}] }
func (x *testIndex) Locate(row int) (int, int) { r := x.rows[row]; return r[0], r[1] }

func (x *testIndex) Range(pattern []byte) (lo, hi int) {
	lo = sort.Search(len(x.rows), func(i int) bool {
		return bytes.Compare(x.suffix(x.rows[i]), pattern) >= 0
	})
	hi = sort.Search(len(x.rows), func(i int) bool {
		s := x.suffix(x.rows[i])
		if len(s) > len(pattern) {
			s = s[:len(pattern)]
		}
		return bytes.Compare(s, pattern) > 0
	})
	return lo, hi
}

func (x *testIndex) Extract(d, off, length int) []byte {
	data := x.docs[d].Data
	if off < 0 || off >= len(data) || length <= 0 {
		return nil
	}
	if off+length > len(data) {
		length = len(data) - off
	}
	return append([]byte(nil), data[off:off+length]...)
}

func (x *testIndex) SizeBits() int64 {
	return int64(x.symbols)*8 + int64(len(x.rows))*3*64
}

// TestCustomRegisteredIndex registers testIndex under a fresh name and
// drives it through NewCollection across transformations: Find, Count,
// Extract, and deletions must all be served by the custom index.
func TestCustomRegisteredIndex(t *testing.T) {
	if err := RegisterIndex("test-suffix-table", buildTestIndex); err != nil {
		t.Fatalf("RegisterIndex: %v", err)
	}
	found := false
	for _, name := range RegisteredIndexes() {
		if name == "test-suffix-table" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered index missing from RegisteredIndexes")
	}

	for _, tr := range []Transformation{Amortized, WorstCase} {
		c := mustCollection(t,
			WithIndex("test-suffix-table"),
			WithTransformation(tr),
			WithSyncRebuilds(),
			WithMinCapacity(16), // small C0 so the custom index actually builds
		)
		payload := []byte("abracadabra")
		for i := uint64(1); i <= 40; i++ {
			mustInsert(t, c, Document{ID: i, Data: payload})
		}
		c.WaitIdle()
		if got := c.Count([]byte("abra")); got != 80 {
			t.Fatalf("transform %d: Count(abra) = %d, want 80", tr, got)
		}
		occs := c.Find([]byte("cad"))
		if len(occs) != 40 {
			t.Fatalf("transform %d: Find(cad) = %d occurrences, want 40", tr, len(occs))
		}
		for _, o := range occs {
			if o.Off != 4 {
				t.Fatalf("transform %d: occurrence at offset %d, want 4", tr, o.Off)
			}
		}
		if data, ok := c.Extract(7, 1, 4); !ok || !bytes.Equal(data, []byte("brac")) {
			t.Fatalf("transform %d: Extract = %q, %v", tr, data, ok)
		}
		if err := c.Delete(7); err != nil {
			t.Fatalf("transform %d: Delete: %v", tr, err)
		}
		c.WaitIdle()
		if got := c.Count([]byte("abra")); got != 78 {
			t.Fatalf("transform %d: Count after delete = %d, want 78", tr, got)
		}
	}
}
